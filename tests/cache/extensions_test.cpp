// Tests for the optional memory-system extensions: the next-line
// hardware prefetcher and the shared memory-bus queuing model.
#include <gtest/gtest.h>

#include "cache/config.hpp"
#include "cache/memory_system.hpp"
#include "cache/topology.hpp"
#include "hv/hypervisor.hpp"
#include "hv/credit_scheduler.hpp"
#include "mem/access.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::cache {
namespace {

MemSystemConfig small_config() {
  MemSystemConfig c;
  c.l1 = CacheGeometry{512, 8, 64};
  c.l2 = CacheGeometry{2048, 8, 64};
  c.llc = CacheGeometry{16384, 16, 64};
  return c;
}

// --- prefetcher ---------------------------------------------------------

TEST(Prefetcher, DisabledByDefault) {
  MemorySystem m(Topology{1, 1}, small_config());
  m.access(0, 0, false, 0, 0);
  EXPECT_EQ(m.prefetches_issued(0), 0u);
}

TEST(Prefetcher, NextLinesPulledIntoL2) {
  auto cfg = small_config();
  cfg.prefetch.enabled = true;
  cfg.prefetch.degree = 2;
  MemorySystem m(Topology{1, 1}, cfg);
  m.access(0, 0, false, 0, 0);  // miss at line 0 => prefetch lines 1, 2
  EXPECT_EQ(m.prefetches_issued(0), 2u);
  // Lines 1 and 2 now hit in L2, not memory.
  EXPECT_EQ(m.access(0, 64, false, 0, 0).level, CacheLevel::kL2);
  EXPECT_EQ(m.access(0, 128, false, 0, 0).level, CacheLevel::kL2);
  // Line 3 was not prefetched (only the demand miss at 0 triggered)...
  // accessing it misses and prefetches 4, 5.
  EXPECT_TRUE(m.access(0, 192, false, 0, 0).llc_miss);
}

TEST(Prefetcher, ResidentLinesNotRefetched) {
  auto cfg = small_config();
  cfg.prefetch.enabled = true;
  cfg.prefetch.degree = 2;
  MemorySystem m(Topology{1, 1}, cfg);
  m.access(0, 0, false, 0, 0);   // prefetch 1,2
  const auto before = m.prefetches_issued(0);
  m.access(0, 320, false, 0, 0);  // miss at line 5: 6,7 prefetched
  EXPECT_EQ(m.prefetches_issued(0), before + 2);
  m.invalidate_private(0);
  // Line 6 still in LLC: L2 probe fails so it is re-prefetched on the
  // next miss in its neighbourhood.
  m.access(0, 320, false, 0, 0);
}

TEST(Prefetcher, SpeedsUpStreamingWorkload) {
  // A sequential walk with prefetching sees mostly L2 hits after the
  // first line of each pair; IPC of a streaming app improves.
  auto base = hv::scaled_machine();
  auto pf = base;
  pf.mem.prefetch.enabled = true;
  pf.mem.prefetch.degree = 4;

  auto run_ipc = [](const hv::MachineConfig& mc) {
    hv::Hypervisor hv(mc, std::make_unique<hv::CreditScheduler>());
    hv::VmConfig config{.name = "lbm"};
    config.loop_workload = true;
    hv::Vm& vm = hv.create_vm(config, workloads::make_app("lbm", mc.mem, 1), 0);
    hv.run_ticks(9);
    return vm.counters().ipc();
  };
  EXPECT_GT(run_ipc(pf), run_ipc(base) * 1.3);
}

TEST(Prefetcher, PrefetchPollutionEvictsOtherVmsLines) {
  auto cfg = small_config();
  cfg.prefetch.enabled = true;
  cfg.prefetch.degree = 4;
  MemorySystem m(Topology{1, 2}, cfg);
  // VM 0 parks a line; VM 1 streams with prefetching: the prefetched
  // lines add capacity pressure beyond the demand stream.
  m.access(0, 0, false, 0, 0);
  for (Address a = 1; a <= 300; ++a) m.access(1, (1u << 20) + a * 64, false, 0, 1);
  EXPECT_FALSE(m.llc(0).probe(0));
}

// --- memory bus ----------------------------------------------------------

TEST(MemoryBus, DisabledByDefaultAndWithoutClock) {
  auto cfg = small_config();
  MemorySystem m(Topology{1, 2}, cfg);
  const auto r = m.access(0, 0, false, 0, 0, /*now_cycle=*/100);
  EXPECT_EQ(r.bus_queue_delay, 0);
  EXPECT_EQ(m.bus_queue_cycles(0), 0);
}

TEST(MemoryBus, BackToBackMissesQueue) {
  auto cfg = small_config();
  cfg.bus.enabled = true;
  cfg.bus.transfer_cycles = 10;
  MemorySystem m(Topology{1, 2}, cfg);
  // Two misses at the same instant: the second waits a transfer.
  const auto r1 = m.access(0, 0, false, 0, 0, 1000);
  const auto r2 = m.access(1, 1 << 20, false, 0, 1, 1000);
  EXPECT_EQ(r1.bus_queue_delay, 0);
  EXPECT_EQ(r2.bus_queue_delay, 10);
  EXPECT_EQ(r2.latency, cfg.lat_mem_local + 10);
  EXPECT_EQ(m.bus_queue_cycles(0), 10);
}

TEST(MemoryBus, SpacedMissesDoNotQueue) {
  auto cfg = small_config();
  cfg.bus.enabled = true;
  cfg.bus.transfer_cycles = 10;
  MemorySystem m(Topology{1, 2}, cfg);
  m.access(0, 0, false, 0, 0, 1000);
  const auto r = m.access(1, 1 << 20, false, 0, 1, 2000);  // long after
  EXPECT_EQ(r.bus_queue_delay, 0);
}

TEST(MemoryBus, PerSocketIndependence) {
  auto cfg = small_config();
  cfg.bus.enabled = true;
  cfg.bus.transfer_cycles = 10;
  MemorySystem m(Topology{2, 2}, cfg);
  m.access(0, 0, false, 0, 0, 1000);          // socket 0 bus
  const auto r = m.access(2, 1 << 20, false, 1, 1, 1000);  // socket 1 bus
  EXPECT_EQ(r.bus_queue_delay, 0);
}

TEST(MemoryBus, CacheHitsBypassTheBus) {
  auto cfg = small_config();
  cfg.bus.enabled = true;
  MemorySystem m(Topology{1, 1}, cfg);
  m.access(0, 0, false, 0, 0, 1000);
  const auto r = m.access(0, 0, false, 0, 0, 1001);  // L1 hit
  EXPECT_EQ(r.bus_queue_delay, 0);
  EXPECT_EQ(r.latency, cfg.lat_l1);
}

TEST(MemoryBus, ParallelStreamersContendEndToEnd) {
  // Two all-miss streamers on one socket: with the bus model their
  // joint throughput drops vs the bus-free machine.
  auto base = hv::scaled_machine();
  auto bus = base;
  bus.mem.bus.enabled = true;
  bus.mem.bus.transfer_cycles = 24;

  auto run_joint_ipc = [](const hv::MachineConfig& mc) {
    hv::Hypervisor hv(mc, std::make_unique<hv::CreditScheduler>());
    for (int i = 0; i < 2; ++i) {
      hv::VmConfig config{.name = "milc" + std::to_string(i)};
      config.loop_workload = true;
      hv.create_vm(config, workloads::make_app("milc", mc.mem, 1 + static_cast<std::uint64_t>(i)), i);
    }
    hv.run_ticks(9);
    pmc::CounterSet total;
    for (hv::Vm* vm : hv.vms()) total += vm->counters();
    return total.ipc();
  };
  EXPECT_LT(run_joint_ipc(bus), run_joint_ipc(base) * 0.95);
}

}  // namespace
}  // namespace kyoto::cache
