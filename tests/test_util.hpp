// Shared helpers for the test suite.
#pragma once

#include <memory>

#include "hv/machine.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::test {

/// Default experimentation machine (1-socket, scaled Table 1).
inline hv::MachineConfig test_machine() { return hv::scaled_machine(); }

/// 2-socket NUMA machine (Fig 9 style).
inline hv::MachineConfig test_numa_machine() { return hv::scaled_numa_machine(); }

/// A RunSpec with short windows to keep tests fast.
inline sim::RunSpec quick_spec(Tick warmup = 3, Tick measure = 15) {
  sim::RunSpec spec;
  spec.machine = test_machine();
  spec.warmup_ticks = warmup;
  spec.measure_ticks = measure;
  return spec;
}

/// Workload factory for a named application profile on `machine`.
inline sim::WorkloadFactory app_factory(const std::string& name,
                                        const hv::MachineConfig& machine) {
  const auto mem = machine.mem;
  return [name, mem](std::uint64_t seed) { return workloads::make_app(name, mem, seed); };
}

}  // namespace kyoto::test
