// Stream versioning: v1 byte-identity golden pin + v2 statistical
// equivalence.
//
//  * v1 is the frozen format: the FNV-1a fingerprints below were
//    recorded from the seed behavior and must never change — any
//    edit that alters them breaks regeneration of every committed
//    figure.
//  * v2 (compiled streams + geometric-skip op generation) is
//    statistically equivalent: same instruction mix, same per-line
//    reference distribution, and — replayed through the memory
//    system on the fig-1 mixes — miss rates within tolerance of v1.
//  * All v2 consumption forms (next, next_batch, next_ref_batch)
//    must describe one identical stream, and clones must continue it.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "cache/memory_system.hpp"
#include "cache/topology.hpp"
#include "kyoto/ks4xen.hpp"
#include "mcsim/replay.hpp"
#include "mem/patterns.hpp"
#include "sim/experiment.hpp"
#include "workloads/catalog.hpp"
#include "workloads/pattern_workload.hpp"

namespace kyoto::workloads {
namespace {

const cache::MemSystemConfig kMem = cache::scaled_mem_system();

/// FNV-1a over the op stream (kind and address of every op).
std::uint64_t fingerprint(Workload& w, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  std::vector<mem::Op> block(256);
  std::size_t done = 0;
  while (done < n) {
    const std::size_t take = std::min<std::size_t>(block.size(), n - done);
    w.next_batch(block.data(), take);
    for (std::size_t i = 0; i < take; ++i) {
      mix(static_cast<std::uint64_t>(block[i].kind));
      mix(block[i].addr);
    }
    done += take;
  }
  return h;
}

// --- v1 golden pin ------------------------------------------------------
//
// Fingerprints of the first 100k ops of representative catalog
// workloads at fixed seeds on the scaled machine.  Recorded from the
// seed engine; the v1 stream must stay byte-identical to it forever.

struct GoldenEntry {
  const char* app;
  std::uint64_t seed;
  std::uint64_t fingerprint;
};

constexpr GoldenEntry kGolden[] = {
    {"gcc", 17, 0x9b844f85b5a8268cull},      // zipf+sequential phases
    {"lbm", 3, 0xac82ca9ea541434full},       // sequential
    {"blockie", 7, 0x2a45f2a43a494120ull},   // uniform random
    {"mcf", 11, 0x47950e355df09373ull},      // pointer chase
    {"soplex", 5, 0x7cde51e5a319514full},    // zipf+strided phases
};

TEST(StreamV1Golden, CatalogStreamsAreByteIdenticalToSeedBehavior) {
  for (const auto& entry : kGolden) {
    const auto w = make_app(entry.app, kMem, entry.seed);
    ASSERT_EQ(w->stream_version(), StreamVersion::kV1);
    EXPECT_EQ(fingerprint(*w, 100'000), entry.fingerprint) << entry.app;
  }
}

TEST(StreamV1Golden, MicroStreamsAreByteIdenticalToSeedBehavior) {
  constexpr std::uint64_t kMicroGolden[2] = {0xf7a423a2dae2e22full, 0xd5a3fd220873f99cull};
  const auto rep = micro_representative(MicroClass::kC2, kMem, 42);
  const auto dis = micro_disruptive(MicroClass::kC3, kMem, 42);
  EXPECT_EQ(fingerprint(*rep, 100'000), kMicroGolden[0]);
  EXPECT_EQ(fingerprint(*dis, 100'000), kMicroGolden[1]);
}

// --- v2 self-consistency ------------------------------------------------

TEST(StreamV2, HonorsRequestAndReportsVersion) {
  const auto v2 = make_app("gcc", kMem, 7, StreamVersion::kV2);
  EXPECT_EQ(v2->stream_version(), StreamVersion::kV2);
  EXPECT_EQ(v2->spec().stream, StreamVersion::kV2);
  const auto v1 = make_app("gcc", kMem, 7);
  EXPECT_EQ(v1->stream_version(), StreamVersion::kV1);
}

TEST(StreamV2, NextAndBatchAndRefBatchDescribeOneStream) {
  for (const char* app : {"gcc", "lbm", "blockie", "mcf"}) {
    const auto a = make_app(app, kMem, 9, StreamVersion::kV2);
    const auto b = make_app(app, kMem, 9, StreamVersion::kV2);
    const auto c = make_app(app, kMem, 9, StreamVersion::kV2);

    // a: per-op; b: batches of odd sizes.
    std::vector<mem::Op> ops_a, ops_b;
    for (int i = 0; i < 5000; ++i) ops_a.push_back(a->next());
    std::vector<mem::Op> block(613);
    while (ops_b.size() < 5000) {
      const std::size_t take = std::min<std::size_t>(613, 5000 - ops_b.size());
      b->next_batch(block.data(), take);
      ops_b.insert(ops_b.end(), block.begin(), block.begin() + take);
    }
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(ops_a[i].kind, ops_b[i].kind) << app << " @" << i;
      ASSERT_EQ(ops_a[i].addr, ops_b[i].addr) << app << " @" << i;
    }

    // c: ref batches re-expanded into ops.
    std::vector<mem::Op> ops_c;
    std::vector<AccessRef> refs(128);
    while (ops_c.size() < 5000) {
      std::uint32_t trailing = 0;
      const auto batch =
          c->next_ref_batch(refs.data(), refs.size(), 5000 - ops_c.size(), &trailing);
      ASSERT_GT(batch.ops, 0u);
      for (std::size_t r = 0; r < batch.refs; ++r) {
        for (std::uint32_t g = 0; g < refs[r].gap; ++g) ops_c.push_back(mem::Op{});
        mem::Op op;
        op.kind = refs[r].write ? mem::OpKind::kStore : mem::OpKind::kLoad;
        op.addr = refs[r].addr;
        ops_c.push_back(op);
      }
      for (std::uint32_t g = 0; g < trailing; ++g) ops_c.push_back(mem::Op{});
    }
    ASSERT_EQ(ops_c.size(), 5000u) << app;
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(ops_a[i].kind, ops_c[i].kind) << app << " @" << i;
      ASSERT_EQ(ops_a[i].addr, ops_c[i].addr) << app << " @" << i;
    }
  }
}

TEST(StreamV1, DefaultRefBatchCompressesTheOpStream) {
  // The base-class next_ref_batch (used by v1 workloads) must
  // describe the same instruction stream as next().
  const auto a = make_app("gcc", kMem, 31);
  const auto b = make_app("gcc", kMem, 31);
  std::vector<mem::Op> ops;
  for (int i = 0; i < 3000; ++i) ops.push_back(a->next());
  std::vector<AccessRef> refs(64);
  std::size_t at = 0;
  while (at < ops.size()) {
    std::uint32_t trailing = 0;
    const auto batch = b->next_ref_batch(refs.data(), refs.size(), ops.size() - at, &trailing);
    ASSERT_GT(batch.ops, 0u);
    for (std::size_t r = 0; r < batch.refs; ++r) {
      for (std::uint32_t g = 0; g < refs[r].gap; ++g) {
        ASSERT_EQ(ops[at].kind, mem::OpKind::kCompute) << at;
        ++at;
      }
      ASSERT_EQ(ops[at].kind,
                refs[r].write ? mem::OpKind::kStore : mem::OpKind::kLoad)
          << at;
      ASSERT_EQ(ops[at].addr, refs[r].addr) << at;
      ++at;
    }
    for (std::uint32_t g = 0; g < trailing; ++g) {
      ASSERT_EQ(ops[at].kind, mem::OpKind::kCompute) << at;
      ++at;
    }
  }
  EXPECT_EQ(at, ops.size());
}

TEST(StreamV2, CloneContinuesIdentically) {
  const auto w = make_app("blockie", kMem, 13, StreamVersion::kV2);
  for (int i = 0; i < 5000; ++i) w->next();
  const auto clone = w->clone();
  EXPECT_EQ(clone->stream_version(), StreamVersion::kV2);
  for (int i = 0; i < 5000; ++i) {
    const auto a = w->next();
    const auto b = clone->next();
    ASSERT_EQ(a.kind, b.kind) << i;
    ASSERT_EQ(a.addr, b.addr) << i;
  }
}

TEST(StreamV2, ResetRestartsStream) {
  const auto w = make_app("mcf", kMem, 19, StreamVersion::kV2);
  const std::uint64_t first = fingerprint(*w, 20'000);
  w->reset();
  EXPECT_EQ(fingerprint(*w, 20'000), first);
}

TEST(StreamV2, OffsetsStayInWorkingSet) {
  for (const auto& profile : app_profiles()) {
    const auto w = make_app(profile.name, kMem, 7, StreamVersion::kV2);
    std::vector<mem::Op> block(256);
    for (int chunk = 0; chunk < 40; ++chunk) {
      w->next_batch(block.data(), block.size());
      for (const auto& op : block) {
        if (op.kind != mem::OpKind::kCompute) {
          ASSERT_LT(op.addr, w->spec().working_set) << profile.name;
        }
      }
    }
  }
}

TEST(StreamV2, InstructionMixMatchesSpec) {
  for (const char* app : {"gcc", "lbm", "blockie", "povray"}) {
    const auto w = make_app(app, kMem, 7, StreamVersion::kV2);
    const int n = 100'000;
    int mem_ops = 0, stores = 0;
    for (int i = 0; i < n; ++i) {
      const auto op = w->next();
      if (op.kind != mem::OpKind::kCompute) {
        ++mem_ops;
        stores += op.kind == mem::OpKind::kStore ? 1 : 0;
      }
    }
    EXPECT_NEAR(static_cast<double>(mem_ops) / n, w->spec().mem_ratio, 0.02) << app;
    EXPECT_NEAR(static_cast<double>(stores) / std::max(mem_ops, 1), w->spec().write_ratio,
                0.03)
        << app;
  }
}

TEST(StreamV2, DecorrelatedFromV1Stream) {
  // The seed-versioned v2 RNG must not replay v1 draws: the two
  // formats' fingerprints differ (they are different streams).
  const auto v1 = make_app("blockie", kMem, 21);
  const auto v2 = make_app("blockie", kMem, 21, StreamVersion::kV2);
  EXPECT_NE(fingerprint(*v1, 50'000), fingerprint(*v2, 50'000));
}

// --- v2 miss-rate agreement on the fig-1 regimes ------------------------

struct ReplayStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t llc_refs = 0;
  std::uint64_t llc_misses = 0;
};

ReplayStats replay(Workload& w, std::uint64_t ops) {
  cache::MemorySystem memory(cache::Topology{1, 1}, kMem, /*seed=*/1);
  auto ctx = memory.context(0, 0, 0);
  std::vector<mem::Op> block(256);
  ReplayStats out;
  for (std::uint64_t done = 0; done < ops; done += block.size()) {
    w.next_batch(block.data(), block.size());
    for (const auto& op : block) {
      if (op.kind == mem::OpKind::kCompute) continue;
      const auto access =
          ctx.access((1ull << 30) + op.addr, op.kind == mem::OpKind::kStore);
      out.llc_refs += access.llc_reference;
      out.llc_misses += access.llc_miss;
    }
  }
  out.accesses = memory.l1(0).stats().accesses;
  out.l1_hits = memory.l1(0).stats().hits;
  return out;
}

TEST(StreamV2, MissRatesAgreeWithV1OnFig1Mixes) {
  // The four fig-1 regimes of the throughput bench: ILC-resident
  // streams, the LLC stream, and the LLC-busting random mix.
  struct MixCase {
    const char* name;
    Bytes ws;
    double mem_ratio;
    bool sequential;
  };
  const MixCase mixes[] = {
      {"stream_l2", kMem.l2.size / 2, 0.6, true},
      {"stream_llc", kMem.llc.size / 2, 0.6, true},
      {"random_mem", kMem.llc.size * 3, 0.8, false},
  };
  for (const auto& mix : mixes) {
    auto make = [&](StreamVersion stream) {
      WorkloadSpec spec;
      spec.name = mix.name;
      spec.mem_ratio = mix.mem_ratio;
      spec.write_ratio = 0.3;
      spec.stream = stream;
      std::unique_ptr<mem::Pattern> pattern;
      if (mix.sequential) {
        pattern = std::make_unique<mem::SequentialPattern>(mix.ws);
      } else {
        pattern = std::make_unique<mem::UniformRandomPattern>(mix.ws);
      }
      return std::make_unique<PatternWorkload>(spec, std::move(pattern), 42);
    };
    const auto v1 = make(StreamVersion::kV1);
    const auto v2 = make(StreamVersion::kV2);
    const std::uint64_t ops = 1'500'000;
    const ReplayStats a = replay(*v1, ops);
    const ReplayStats b = replay(*v2, ops);

    const double acc_rel = std::abs(static_cast<double>(a.accesses) -
                                    static_cast<double>(b.accesses)) /
                           static_cast<double>(a.accesses);
    EXPECT_LT(acc_rel, 0.01) << mix.name;

    const double l1_a = static_cast<double>(a.l1_hits) / static_cast<double>(a.accesses);
    const double l1_b = static_cast<double>(b.l1_hits) / static_cast<double>(b.accesses);
    EXPECT_NEAR(l1_a, l1_b, 0.02) << mix.name;

    const double miss_a =
        static_cast<double>(a.llc_misses) / static_cast<double>(a.accesses);
    const double miss_b =
        static_cast<double>(b.llc_misses) / static_cast<double>(b.accesses);
    // Relative agreement where the rate is substantial, absolute for
    // near-zero rates (the L2-resident stream).
    if (miss_a > 0.05) {
      EXPECT_LT(std::abs(miss_a - miss_b) / miss_a, 0.05) << mix.name;
    } else {
      EXPECT_NEAR(miss_a, miss_b, 0.01) << mix.name;
    }
  }
}

// --- run_vcpu-level v2 consumption gate ---------------------------------
//
// The ref-batch engine (Machine::run_vcpu_refs) is a consumption
// format, not a different simulation: a full scenario must produce
// bit-equal metrics — per-VM cycles, instructions, PMU-derived LLC
// references/misses, and every Kyoto decision folded into them —
// whichever loop consumes the v2 stream.  These tests run identical
// scenarios with the engine knob on (default) and off (per-op
// fallback) and require exact RunOutcome equality.

struct EngineMix {
  const char* name;
  Bytes ws;
  double mem_ratio;
  bool sequential;
  double mlp;
};

std::unique_ptr<PatternWorkload> make_engine_mix(const EngineMix& mix,
                                                 StreamVersion stream,
                                                 std::uint64_t seed) {
  WorkloadSpec spec;
  spec.name = mix.name;
  spec.mem_ratio = mix.mem_ratio;
  spec.write_ratio = 0.3;
  spec.mlp = mix.mlp;
  spec.stream = stream;
  std::unique_ptr<mem::Pattern> pattern;
  if (mix.sequential) {
    pattern = std::make_unique<mem::SequentialPattern>(mix.ws);
  } else {
    pattern = std::make_unique<mem::UniformRandomPattern>(mix.ws);
  }
  return std::make_unique<PatternWorkload>(spec, std::move(pattern), seed);
}

std::vector<sim::VmPlan> engine_plans(const cache::MemSystemConfig& mem, int cores,
                                      StreamVersion stream) {
  const EngineMix mixes[] = {
      {"stream_l1", mem.l1.size / 2, 0.6, true, 2.0},
      {"stream_llc", mem.llc.size / 2, 0.6, true, 2.0},
      {"random_mem", mem.llc.size * 3, 0.8, false, 1.0},
      {"stream_l2", mem.l2.size / 2, 0.6, true, 2.0},
  };
  std::vector<sim::VmPlan> plans;
  for (int core = 0; core < cores; ++core) {
    const EngineMix mix = mixes[core % 4];
    sim::VmPlan plan;
    plan.config.name = mix.name;
    plan.pinned_cores = {core};
    plan.workload = [mix, stream](std::uint64_t seed) {
      return make_engine_mix(mix, stream, seed);
    };
    plans.push_back(std::move(plan));
  }
  return plans;
}

sim::RunOutcome run_with_engine(const sim::RunSpec& spec,
                                const std::vector<sim::VmPlan>& plans, bool ref_batch) {
  return sim::run_scenario(spec, plans, [ref_batch](hv::Hypervisor& h) {
    h.machine().set_ref_batch_engine(ref_batch);
  });
}

TEST(RefBatchEngine, ScenarioMetricsBitEqualAcrossConsumptionModes) {
  // Scaled table-1 machine, one fig-1 mix per core, XCS.
  sim::RunSpec spec;
  spec.warmup_ticks = 2;
  spec.measure_ticks = 8;
  const auto plans = engine_plans(kMem, 4, StreamVersion::kV2);
  const auto refs = run_with_engine(spec, plans, true);
  const auto ops = run_with_engine(spec, plans, false);
  ASSERT_EQ(refs.vms.size(), ops.vms.size());
  for (std::size_t i = 0; i < refs.vms.size(); ++i) {
    EXPECT_EQ(refs.vms[i], ops.vms[i]) << plans[i].config.name;
  }
  EXPECT_EQ(refs, ops);
  // Sanity: the streams really were v2 (the gate is vacuous on v1).
  EXPECT_EQ(plans[0].workload(1)->stream_version(), StreamVersion::kV2);
}

TEST(RefBatchEngine, PaperGeometryAndKyotoStateBitEqual) {
  // Paper-fidelity memory geometry at the scaled clock, KS4Xen with a
  // tight permit on the disruptor: covers the Kyoto punish path (cap
  // bookkeeping, demotions) on the second machine geometry.
  sim::RunSpec spec;
  spec.machine.topology = cache::Topology{1, 2};
  spec.machine.mem = cache::paper_mem_system();
  spec.warmup_ticks = 2;
  spec.measure_ticks = 9;
  spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
  auto plans = engine_plans(spec.machine.mem, 2, StreamVersion::kV2);
  plans[1].config.llc_cap = 1.0;  // random-mem disruptor: punished fast
  const auto refs = run_with_engine(spec, plans, true);
  const auto ops = run_with_engine(spec, plans, false);
  EXPECT_EQ(refs, ops);
}

TEST(RefBatchEngine, V1StreamsUnaffectedByKnob) {
  // v1 workloads never enter the ref loop; the knob must be inert.
  sim::RunSpec spec;
  spec.warmup_ticks = 2;
  spec.measure_ticks = 6;
  const auto plans = engine_plans(kMem, 4, StreamVersion::kV1);
  EXPECT_EQ(run_with_engine(spec, plans, true), run_with_engine(spec, plans, false));
}

TEST(RefBatchEngine, ReplaySimulatorBitEqualAcrossConsumptionModes) {
  const EngineMix mixes[] = {
      {"stream_llc", kMem.llc.size / 2, 0.6, true, 2.0},
      {"random_mem", kMem.llc.size * 3, 0.8, false, 1.0},
      {"stream_l2", kMem.l2.size / 2, 0.6, true, 2.0},
  };
  for (const auto& mix : mixes) {
    const auto live = make_engine_mix(mix, StreamVersion::kV2, 23);
    mcsim::ReplaySimulator sim(kMem, /*freq_khz=*/43'750);
    ASSERT_TRUE(sim.ref_batch_engine());
    const auto refs = sim.replay_live(*live, 400'000);
    sim.set_ref_batch_engine(false);
    const auto ops = sim.replay_live(*live, 400'000);
    EXPECT_EQ(refs.instructions, ops.instructions) << mix.name;
    EXPECT_EQ(refs.cycles, ops.cycles) << mix.name;
    EXPECT_EQ(refs.llc_references, ops.llc_references) << mix.name;
    EXPECT_EQ(refs.llc_misses, ops.llc_misses) << mix.name;
    EXPECT_GT(refs.instructions, 0u) << mix.name;
  }
}

}  // namespace
}  // namespace kyoto::workloads
