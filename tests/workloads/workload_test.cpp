#include "workloads/catalog.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "cache/config.hpp"
#include "mem/access.hpp"
#include "workloads/pattern_workload.hpp"
#include "workloads/workload.hpp"

namespace kyoto::workloads {
namespace {

const cache::MemSystemConfig kMem = cache::scaled_mem_system();

TEST(Catalog, Table2MappingsPresent) {
  EXPECT_EQ(sensitive_apps(), (std::vector<std::string>{"gcc", "omnetpp", "soplex"}));
  EXPECT_EQ(disruptive_apps(), (std::vector<std::string>{"lbm", "blockie", "mcf"}));
}

TEST(Catalog, Fig4AppsAllExist) {
  EXPECT_EQ(fig4_apps().size(), 10u);
  for (const auto& name : fig4_apps()) {
    EXPECT_NO_THROW(app_profile(name)) << name;
  }
}

TEST(Catalog, UnknownAppThrows) {
  EXPECT_THROW(app_profile("doom"), std::logic_error);
  EXPECT_THROW(make_app("doom", kMem, 1), std::logic_error);
}

TEST(Catalog, SensitiveAndDisruptiveFlagsMatchTable2) {
  for (const auto& name : sensitive_apps()) EXPECT_TRUE(app_profile(name).sensitive) << name;
  for (const auto& name : disruptive_apps()) {
    EXPECT_TRUE(app_profile(name).disruptive) << name;
  }
  EXPECT_FALSE(app_profile("hmmer").disruptive);
}

TEST(Catalog, DisruptiveWorkingSetsExceedLlc) {
  for (const auto& name : disruptive_apps()) {
    const auto w = make_app(name, kMem, 1);
    EXPECT_GT(w->spec().working_set, kMem.llc.size) << name;
  }
}

TEST(Catalog, IlcResidentAppsFitIntermediateCaches) {
  for (const char* name : {"hmmer", "povray"}) {
    const auto w = make_app(name, kMem, 1);
    EXPECT_LE(w->spec().working_set, kMem.l2.size) << name;
  }
}

TEST(Catalog, MilcHasLargestExpectedMissVolume) {
  // The LLCM ordering of Fig 4 requires milc's run to produce the
  // largest total miss count: every access misses (ws >> LLC) and the
  // run is by far the longest.
  const auto& milc = app_profile("milc");
  for (const auto& name : fig4_apps()) {
    if (name == "milc") continue;
    const auto& other = app_profile(name);
    const double milc_volume = milc.mem_ratio * static_cast<double>(milc.length);
    const double other_volume = other.mem_ratio * static_cast<double>(other.length);
    EXPECT_GT(milc_volume, other_volume) << name;
  }
}

// --- parameterized sanity over every profile ---------------------------

class AppProfileTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AppProfileTest, SpecFieldsAreSane) {
  const auto w = make_app(GetParam(), kMem, 7);
  const auto& spec = w->spec();
  EXPECT_EQ(spec.name, GetParam());
  EXPECT_GT(spec.working_set, 0u);
  EXPECT_GT(spec.mem_ratio, 0.0);
  EXPECT_LE(spec.mem_ratio, 1.0);
  EXPECT_GE(spec.write_ratio, 0.0);
  EXPECT_LE(spec.write_ratio, 1.0);
  EXPECT_GE(spec.mlp, 1.0);
  EXPECT_GT(spec.length, 0);
}

TEST_P(AppProfileTest, MemRatioIsRespected) {
  const auto w = make_app(GetParam(), kMem, 7);
  const int n = 50000;
  int mem_ops = 0;
  for (int i = 0; i < n; ++i) {
    if (w->next().kind != mem::OpKind::kCompute) ++mem_ops;
  }
  EXPECT_NEAR(static_cast<double>(mem_ops) / n, w->spec().mem_ratio, 0.02) << GetParam();
}

TEST_P(AppProfileTest, OffsetsStayInWorkingSet) {
  const auto w = make_app(GetParam(), kMem, 7);
  for (int i = 0; i < 20000; ++i) {
    const auto op = w->next();
    if (op.kind != mem::OpKind::kCompute) {
      ASSERT_LT(op.addr, w->spec().working_set) << GetParam();
    }
  }
}

TEST_P(AppProfileTest, CloneContinuesIdentically) {
  const auto w = make_app(GetParam(), kMem, 7);
  for (int i = 0; i < 5000; ++i) w->next();
  const auto clone = w->clone();
  for (int i = 0; i < 5000; ++i) {
    const auto a = w->next();
    const auto b = clone->next();
    ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << GetParam() << " @" << i;
    ASSERT_EQ(a.addr, b.addr) << GetParam() << " @" << i;
  }
}

TEST_P(AppProfileTest, ResetRestartsStream) {
  const auto w = make_app(GetParam(), kMem, 7);
  std::vector<mem::Op> first;
  for (int i = 0; i < 1000; ++i) first.push_back(w->next());
  w->reset();
  for (int i = 0; i < 1000; ++i) {
    const auto op = w->next();
    ASSERT_EQ(op.addr, first[static_cast<std::size_t>(i)].addr) << GetParam() << " @" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppProfileTest,
                         ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto& p : app_profiles()) names.push_back(p.name);
                           return names;
                         }()),
                         [](const auto& info) { return info.param; });

// --- micro benchmarks ---------------------------------------------------

TEST(MicroBenchmarks, WorkingSetsMatchClasses) {
  for (const auto cls : {MicroClass::kC1, MicroClass::kC2, MicroClass::kC3}) {
    const auto rep = micro_representative(cls, kMem, 1);
    const auto dis = micro_disruptive(cls, kMem, 2);
    switch (cls) {
      case MicroClass::kC1:
        EXPECT_LE(rep->spec().working_set, kMem.l2.size);
        EXPECT_LE(dis->spec().working_set, kMem.l2.size);
        break;
      case MicroClass::kC2:
        EXPECT_GT(rep->spec().working_set, kMem.l2.size);
        EXPECT_LE(rep->spec().working_set, kMem.llc.size);
        EXPECT_LE(dis->spec().working_set, kMem.llc.size);
        break;
      case MicroClass::kC3:
        EXPECT_GT(rep->spec().working_set, kMem.llc.size);
        EXPECT_GT(dis->spec().working_set, kMem.llc.size);
        break;
    }
  }
}

TEST(MicroBenchmarks, EndlessAndNamed) {
  const auto rep = micro_representative(MicroClass::kC2, kMem, 1);
  EXPECT_EQ(rep->spec().length, 0);  // endless
  EXPECT_EQ(rep->spec().name, "v2rep");
  const auto dis = micro_disruptive(MicroClass::kC3, kMem, 1);
  EXPECT_EQ(dis->spec().name, "v3dis");
}

TEST(MicroBenchmarks, DisruptiveIsMoreMemoryIntensive) {
  for (const auto cls : {MicroClass::kC1, MicroClass::kC2, MicroClass::kC3}) {
    const auto rep = micro_representative(cls, kMem, 1);
    const auto dis = micro_disruptive(cls, kMem, 1);
    EXPECT_GT(dis->spec().mem_ratio, rep->spec().mem_ratio);
  }
}

// --- PatternWorkload unit behaviour ------------------------------------

TEST(PatternWorkload, ValidatesSpec) {
  WorkloadSpec bad;
  bad.name = "bad";
  bad.mem_ratio = 1.5;
  EXPECT_THROW(PatternWorkload(bad, std::make_unique<mem::SequentialPattern>(1024), 1),
               std::logic_error);
  WorkloadSpec bad2;
  bad2.mlp = 0.5;
  EXPECT_THROW(PatternWorkload(bad2, std::make_unique<mem::SequentialPattern>(1024), 1),
               std::logic_error);
}

TEST(PatternWorkload, WorkingSetTakenFromPattern) {
  WorkloadSpec spec;
  spec.name = "t";
  spec.mem_ratio = 0.5;
  PatternWorkload w(spec, std::make_unique<mem::SequentialPattern>(10 * 64), 1);
  EXPECT_EQ(w.spec().working_set, 10u * 64u);
}

TEST(PatternWorkload, WriteRatioRespected) {
  WorkloadSpec spec;
  spec.name = "t";
  spec.mem_ratio = 1.0;
  spec.write_ratio = 0.4;
  PatternWorkload w(spec, std::make_unique<mem::SequentialPattern>(1024), 1);
  int stores = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (w.next().kind == mem::OpKind::kStore) ++stores;
  }
  EXPECT_NEAR(static_cast<double>(stores) / n, 0.4, 0.02);
}

TEST(NextBatch, ProducesExactlyTheNextStream) {
  // next_batch must emit the same ops as repeated next(), for any
  // block size, including across block boundaries.
  const auto a = make_app("gcc", kMem, 17);
  const auto b = make_app("gcc", kMem, 17);
  std::vector<mem::Op> batch(1000);
  std::size_t got = 0;
  for (std::size_t block : {1ul, 7ul, 256ul, 300ul}) {
    const std::size_t n = a->next_batch(batch.data() + got, block);
    EXPECT_EQ(n, block);
    got += n;
  }
  for (std::size_t i = 0; i < got; ++i) {
    const mem::Op expect = b->next();
    EXPECT_EQ(batch[i].kind, expect.kind) << i;
    EXPECT_EQ(batch[i].addr, expect.addr) << i;
  }
}

TEST(NextBatch, CloneContinuesBatchedStream) {
  const auto w = make_app("lbm", kMem, 3);
  std::vector<mem::Op> buf(512);
  w->next_batch(buf.data(), buf.size());  // advance via the batch path
  const auto clone = w->clone();
  for (int i = 0; i < 200; ++i) {
    const mem::Op expect = w->next();
    const mem::Op got = clone->next();
    EXPECT_EQ(got.kind, expect.kind) << i;
    EXPECT_EQ(got.addr, expect.addr) << i;
  }
}

}  // namespace
}  // namespace kyoto::workloads
