// Calibration guards: the catalog's cache behaviour, measured on the
// replay simulator, must keep the orderings the paper's figures rely
// on.  These are fast unit-level versions of what bench_fig4 measures
// end-to-end, so a profile edit that silently breaks a figure fails
// CI here first.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cache/config.hpp"
#include "mcsim/replay.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::workloads {
namespace {

const cache::MemSystemConfig kMem = cache::scaled_mem_system();
constexpr KHz kFreq = 43'750;

/// Intrinsic Equation-1 rate via a private replay (solo, warm).
double intrinsic_rate(const std::string& name) {
  static std::map<std::string, double> cache;
  const auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  mcsim::ReplaySimulator sim(kMem, kFreq, 99, 0.5);
  const auto app = make_app(name, kMem, 11);
  const double rate = sim.replay_live(*app, 250'000).llc_cap_act(kFreq);
  cache.emplace(name, rate);
  return rate;
}

TEST(Calibration, DisruptorsOutPolluteSensitiveApps) {
  double min_dis = 1e18;
  for (const auto& d : disruptive_apps()) min_dis = std::min(min_dis, intrinsic_rate(d));
  // Every sensitive app pollutes less than every disruptor; gcc and
  // omnetpp by a wide margin.  (soplex is only just below — in the
  // paper's Fig 4 it is the 4th most aggressive app while still being
  // a Table-2 "sensitive" VM, so a narrow gap is the correct shape.)
  for (const auto& s : sensitive_apps()) {
    EXPECT_LT(intrinsic_rate(s), min_dis) << s;
  }
  EXPECT_LT(intrinsic_rate("gcc"), min_dis / 2.0);
  EXPECT_LT(intrinsic_rate("omnetpp"), min_dis / 2.0);
}

TEST(Calibration, LbmAndBlockieLeadTheRateOrder) {
  // Fig 4's o3 head: lbm and blockie above milc, milc above mcf/soplex.
  EXPECT_GT(intrinsic_rate("lbm"), intrinsic_rate("milc"));
  EXPECT_GT(intrinsic_rate("blockie"), intrinsic_rate("milc"));
  EXPECT_GT(intrinsic_rate("milc"), intrinsic_rate("mcf"));
  EXPECT_GT(intrinsic_rate("milc"), intrinsic_rate("soplex"));
}

TEST(Calibration, MilcHasTheLargestPerRunMissVolume) {
  // Fig 4's o2 head: LLCM(total) = rate-ish x run length; milc's long
  // streaming run must dominate every other total.
  std::map<std::string, double> volume;
  for (const auto& name : fig4_apps()) {
    mcsim::ReplaySimulator sim(kMem, kFreq, 99, 0.5);
    const auto app = make_app(name, kMem, 11);
    const auto r = sim.replay_live(*app, 150'000);
    const double miss_per_instr =
        static_cast<double>(r.llc_misses) / static_cast<double>(r.instructions);
    volume[name] = miss_per_instr * static_cast<double>(app_profile(name).length);
  }
  for (const auto& [name, v] : volume) {
    if (name == "milc") continue;
    EXPECT_GT(volume["milc"], v) << name;
  }
}

TEST(Calibration, IlcResidentAppsPolluteAlmostNothing) {
  EXPECT_LT(intrinsic_rate("hmmer"), 5.0);
  EXPECT_LT(intrinsic_rate("povray"), 5.0);
  // ...which is what makes them skip-eligible (Fig 10) and
  // overhead-probe material (Fig 12).
}

TEST(Calibration, SensitiveAppsActuallyUseTheLlc) {
  // A "sensitive" app must hold LLC-resident state worth stealing:
  // its working set exceeds the private caches.
  for (const auto& name : sensitive_apps()) {
    const auto app = make_app(name, kMem, 1);
    EXPECT_GT(app->spec().working_set, kMem.l2.size * 4) << name;
  }
}

TEST(Calibration, MicroClassesSeparateCleanly) {
  // The three class representatives must produce clearly distinct
  // pollution levels: C1 ~ none, C2 moderate (fits LLC), C3 heavy.
  mcsim::ReplaySimulator sim(kMem, kFreq, 99, 0.5);
  const auto c1 = sim.replay_live(*micro_representative(MicroClass::kC1, kMem, 1), 200'000);
  const auto c3d = sim.replay_live(*micro_disruptive(MicroClass::kC3, kMem, 1), 200'000);
  EXPECT_LT(c1.llc_cap_act(kFreq), 2.0);
  EXPECT_GT(c3d.llc_cap_act(kFreq), 100.0);
}

}  // namespace
}  // namespace kyoto::workloads
