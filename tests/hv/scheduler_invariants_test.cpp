// Cross-scheduler invariants, enforced for every scheduler variant
// via parameterized suites:
//  * a vCPU is never handed to two cores in the same tick;
//  * picked vCPUs are always pinned to the picked core;
//  * accounting conservation: total on-CPU cycles never exceed the
//    machine's cycle capacity (idle + busy = capacity);
//  * done vCPUs are never scheduled again.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "hv/cfs_scheduler.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::hv {
namespace {

struct SchedCase {
  const char* name;
  std::function<std::unique_ptr<Scheduler>()> make;
  bool shares_cores;  // Pisces cannot share a core
};

const SchedCase kSchedulers[] = {
    {"xcs", [] { return std::unique_ptr<Scheduler>(std::make_unique<CreditScheduler>()); },
     true},
    {"cfs", [] { return std::unique_ptr<Scheduler>(std::make_unique<CfsScheduler>()); },
     true},
    {"pisces",
     [] { return std::unique_ptr<Scheduler>(std::make_unique<PiscesScheduler>()); }, false},
    {"ks4xen", [] { return std::unique_ptr<Scheduler>(std::make_unique<core::Ks4Xen>()); },
     true},
    {"ks4linux",
     [] { return std::unique_ptr<Scheduler>(std::make_unique<core::Ks4Linux>()); }, true},
    {"ks4pisces",
     [] { return std::unique_ptr<Scheduler>(std::make_unique<core::Ks4Pisces>()); }, false},
};

class SchedulerInvariantTest : public ::testing::TestWithParam<SchedCase> {};

std::unique_ptr<Hypervisor> build(const SchedCase& c) {
  auto hv = std::make_unique<Hypervisor>(test::test_machine(), c.make());
  const auto mem = test::test_machine().mem;
  const int per_core = c.shares_cores ? 2 : 1;
  int id = 0;
  for (int core = 0; core < 4; ++core) {
    for (int k = 0; k < per_core; ++k) {
      VmConfig config{.name = "vm" + std::to_string(id)};
      config.loop_workload = id % 3 != 0;  // a mix of finite and endless VMs
      config.llc_cap = (id % 2 == 0) ? 50.0 : 0.0;
      hv->create_vm(config,
                    workloads::make_app(id % 2 ? "gcc" : "lbm", mem,
                                        static_cast<std::uint64_t>(id) + 1),
                    core);
      ++id;
    }
  }
  return hv;
}

TEST_P(SchedulerInvariantTest, NoVcpuOnTwoCoresAndPinningRespected) {
  auto hv = build(GetParam());
  auto& sched = hv->scheduler();
  // Drive picks manually for one synthetic tick and check uniqueness.
  // (The hypervisor's own loop KYOTO_CHECKs pinning as well; this
  // validates the scheduler contract directly.)
  for (Tick t = 0; t < 30; ++t) {
    std::set<int> picked;
    for (int core = 0; core < 4; ++core) {
      Vcpu* v = sched.pick(core, t);
      if (v == nullptr) continue;
      EXPECT_EQ(v->pinned_core(), core) << GetParam().name;
      EXPECT_TRUE(picked.insert(v->id()).second)
          << GetParam().name << ": vCPU " << v->id() << " picked twice in tick " << t;
      RunReport report;
      report.core = core;
      report.tick = t;
      report.ran = hv->machine().cycles_per_tick();
      report.pmc_delta.set(pmc::Counter::kUnhaltedCycles,
                           static_cast<std::uint64_t>(report.ran));
      sched.account(*v, report);
    }
    if ((t + 1) % kTicksPerSlice == 0) sched.slice_end(t + 1);
  }
}

TEST_P(SchedulerInvariantTest, CycleConservation) {
  auto hv = build(GetParam());
  const Tick ticks = 24;
  hv->run_ticks(ticks);
  const Cycles capacity = ticks * hv->machine().cycles_per_tick();
  for (int core = 0; core < 4; ++core) {
    Cycles used = 0;
    for (Vm* vm : hv->vms()) {
      for (const auto& vcpu : vm->vcpus()) {
        if (vcpu->pinned_core() == core) used += vcpu->cpu_cycles();
      }
    }
    // Small overshoot allowance: the final instruction of a burst may
    // exceed the budget by its own latency.
    EXPECT_LE(used, capacity + 64 * 400) << GetParam().name << " core " << core;
  }
}

TEST_P(SchedulerInvariantTest, DoneVcpusStayDescheduled) {
  auto hv = std::make_unique<Hypervisor>(test::test_machine(), GetParam().make());
  const auto mem = test::test_machine().mem;
  VmConfig config{.name = "finite"};
  Vm& vm = hv->create_vm(config, workloads::make_app("hmmer", mem, 1), 0);
  hv->run_until([&] { return vm.done(); }, 4000);
  ASSERT_TRUE(vm.done()) << GetParam().name;
  const auto sched_at_done = hv->sched_ticks(vm.vcpu(0));
  hv->run_ticks(10);
  EXPECT_EQ(hv->sched_ticks(vm.vcpu(0)), sched_at_done) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerInvariantTest,
                         ::testing::ValuesIn(kSchedulers),
                         [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace kyoto::hv
