#include "hv/hypervisor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hv/credit_scheduler.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::hv {
namespace {

std::unique_ptr<Hypervisor> make_hv(const MachineConfig& mc = test::test_machine()) {
  return std::make_unique<Hypervisor>(mc, std::make_unique<CreditScheduler>());
}

std::unique_ptr<workloads::Workload> app(const char* name, std::uint64_t seed = 1) {
  return workloads::make_app(name, test::test_machine().mem, seed);
}

TEST(Machine, CyclesPerTickFollowsFrequency) {
  const MachineConfig mc = scaled_machine();
  Machine m(mc);
  EXPECT_EQ(m.cycles_per_tick(), mc.freq_khz * kTickMs);
  EXPECT_EQ(Machine(paper_machine()).cycles_per_tick(), 28'000'000);
}

TEST(Machine, RunVcpuConsumesBudgetAndCountsPmcs) {
  auto hv = make_hv();
  Vm& vm = hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 0);
  Vcpu& vcpu = vm.vcpu(0);
  auto& machine = hv->machine();
  vcpu.counters().switch_in(machine.pmu(0));
  const auto result = machine.run_vcpu(vcpu, 0, 10'000, 0);
  vcpu.counters().switch_out(machine.pmu(0));
  EXPECT_GE(result.cycles_used, 10'000);
  EXPECT_LT(result.cycles_used, 10'000 + 400);  // bounded overshoot
  EXPECT_GT(result.instructions, 0);
  const auto counters = vcpu.counters().read();
  EXPECT_EQ(counters.get(pmc::Counter::kInstructions),
            static_cast<std::uint64_t>(result.instructions));
  EXPECT_EQ(counters.get(pmc::Counter::kUnhaltedCycles),
            static_cast<std::uint64_t>(result.cycles_used));
}

TEST(Vm, AutoSizesMemoryToWorkingSet) {
  auto hv = make_hv();
  Vm& vm = hv->create_vm(VmConfig{.name = "a"}, app("lbm"), 0);
  EXPECT_GE(vm.address_space().size(), vm.vcpu(0).workload().spec().working_set);
}

TEST(Vm, ExplicitMemoryTooSmallThrows) {
  auto hv = make_hv();
  VmConfig config{.name = "a"};
  config.memory = 64;  // one line, far below lbm's working set
  EXPECT_THROW(hv->create_vm(config, app("lbm"), 0), std::logic_error);
}

TEST(Vm, VcpuIdsAreGloballyUnique) {
  auto hv = make_hv();
  Vm& a = hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 0);
  std::vector<std::unique_ptr<workloads::Workload>> w2;
  w2.push_back(app("gcc", 2));
  w2.push_back(app("gcc", 3));
  Vm& b = hv->create_vm(VmConfig{.name = "b"}, std::move(w2), {1, 2});
  EXPECT_EQ(a.vcpu(0).id(), 0);
  EXPECT_EQ(b.vcpu(0).id(), 1);
  EXPECT_EQ(b.vcpu(1).id(), 2);
  EXPECT_EQ(b.vcpu(1).index(), 1);
}

TEST(Hypervisor, TicksAdvanceTime) {
  auto hv = make_hv();
  hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 0);
  EXPECT_EQ(hv->now(), 0);
  hv->run_ticks(5);
  EXPECT_EQ(hv->now(), 5);
  hv->run_slices(2);
  EXPECT_EQ(hv->now(), 5 + 2 * kTicksPerSlice);
}

TEST(Hypervisor, IdleCoresAreCounted) {
  auto hv = make_hv();
  hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 0);
  hv->run_ticks(4);
  EXPECT_EQ(hv->idle_ticks(0), 0);
  EXPECT_EQ(hv->idle_ticks(1), 4);  // nothing pinned there
}

TEST(Hypervisor, SchedTicksTracksScheduling) {
  auto hv = make_hv();
  Vm& vm = hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 0);
  hv->run_ticks(6);
  EXPECT_EQ(hv->sched_ticks(vm.vcpu(0)), 6);
}

TEST(Hypervisor, TickHooksFire) {
  auto hv = make_hv();
  hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 0);
  int fired = 0;
  Tick last = -1;
  hv->add_tick_hook([&](Hypervisor&, Tick now) {
    ++fired;
    last = now;
  });
  hv->run_ticks(7);
  EXPECT_EQ(fired, 7);
  EXPECT_EQ(last, 6);
}

TEST(Hypervisor, RunUntilStopsEarly) {
  auto hv = make_hv();
  hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 0);
  const Tick executed = hv->run_until([&] { return hv->now() >= 3; }, 100);
  EXPECT_EQ(executed, 3);
}

TEST(Hypervisor, DefaultPinningRoundRobins) {
  auto hv = make_hv();
  std::vector<std::unique_ptr<workloads::Workload>> w;
  for (int i = 0; i < 6; ++i) w.push_back(app("gcc", static_cast<std::uint64_t>(i)));
  Vm& vm = hv->create_vm(VmConfig{.name = "a"}, std::move(w));
  EXPECT_EQ(vm.vcpu(0).pinned_core(), 0);
  EXPECT_EQ(vm.vcpu(1).pinned_core(), 1);
  EXPECT_EQ(vm.vcpu(4).pinned_core(), 0);  // wraps over 4 cores
}

TEST(Hypervisor, PinTargetValidated) {
  auto hv = make_hv();
  EXPECT_THROW(hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 99), std::logic_error);
}

TEST(Hypervisor, WorkloadRunsToCompletionAndHalts) {
  auto hv = make_hv();
  // hmmer: ILC-resident, high IPC — completes quickly.
  Vm& vm = hv->create_vm(VmConfig{.name = "a"}, app("hmmer"), 0);
  hv->run_until([&] { return vm.done(); }, 2000);
  EXPECT_TRUE(vm.done());
  EXPECT_EQ(vm.vcpu(0).completed_runs(), 1);
  EXPECT_GT(vm.vcpu(0).first_completion_wall_cycle(), 0);
  // Retired exactly the workload length in the completed run.
  EXPECT_EQ(vm.vcpu(0).retired_total(), vm.vcpu(0).workload().spec().length);
  // Once done, the core idles.
  const auto idle_before = hv->idle_ticks(0);
  hv->run_ticks(3);
  EXPECT_EQ(hv->idle_ticks(0), idle_before + 3);
}

TEST(Hypervisor, LoopingVmRestartsWorkload) {
  auto hv = make_hv();
  VmConfig config{.name = "a"};
  config.loop_workload = true;
  Vm& vm = hv->create_vm(config, app("hmmer"), 0);
  hv->run_until([&] { return vm.vcpu(0).completed_runs() >= 2; }, 4000);
  EXPECT_GE(vm.vcpu(0).completed_runs(), 2);
  EXPECT_FALSE(vm.done());
}

TEST(Hypervisor, MigrationMovesVcpuAcrossCores) {
  auto hv = make_hv();
  Vm& vm = hv->create_vm(VmConfig{.name = "a"}, app("gcc"), 0);
  hv->run_ticks(2);
  hv->migrate(vm.vcpu(0), 2);
  EXPECT_EQ(vm.vcpu(0).pinned_core(), 2);
  const auto sched_before = hv->sched_ticks(vm.vcpu(0));
  hv->run_ticks(3);
  EXPECT_EQ(hv->sched_ticks(vm.vcpu(0)), sched_before + 3);  // runs on new core
  EXPECT_EQ(hv->idle_ticks(0), 3);  // old core idles after the migration
}

TEST(Hypervisor, MigrationToRemoteNodeSlowsMemoryBoundVm) {
  auto hv = std::make_unique<Hypervisor>(test::test_numa_machine(),
                                         std::make_unique<CreditScheduler>());
  VmConfig config{.name = "lbm"};
  config.loop_workload = true;
  config.home_node = 0;
  Vm& vm = hv->create_vm(config, app("lbm"), 0);
  hv->run_ticks(6);
  const auto local = vm.counters();
  hv->run_ticks(6);
  const auto local_delta = vm.counters() - local;

  hv->migrate(vm.vcpu(0), 4);  // socket 1: all memory is now remote
  hv->run_ticks(2);            // warm the new socket's LLC
  const auto remote = vm.counters();
  hv->run_ticks(6);
  const auto remote_delta = vm.counters() - remote;

  EXPECT_LT(remote_delta.ipc(), local_delta.ipc() * 0.93);
}

TEST(Hypervisor, PmcConservation) {
  // Sum of per-VM virtualized counters equals the machine totals when
  // every tick was fully accounted (no in-flight bursts).
  auto hv = make_hv();
  Vm& a = hv->create_vm(VmConfig{.name = "a"}, app("gcc", 1), 0);
  Vm& b = hv->create_vm(VmConfig{.name = "b"}, app("omnetpp", 2), 0);
  Vm& c = hv->create_vm(VmConfig{.name = "c"}, app("lbm", 3), 1);
  hv->run_ticks(9);
  pmc::CounterSet vm_total = a.counters() + b.counters() + c.counters();
  pmc::CounterSet machine_total;
  for (int core = 0; core < hv->machine().topology().total_cores(); ++core) {
    machine_total += hv->machine().pmu(core).read();
  }
  EXPECT_EQ(vm_total, machine_total);
}

}  // namespace
}  // namespace kyoto::hv
