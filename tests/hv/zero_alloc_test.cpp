// Steady-state allocation gate: once a hypervisor is warmed up, the
// tick loop must not touch the heap at all.
//
// Everything hot is pre-sized at admission time — ref-batch storage
// from the hypervisor's bump arena, per-VM cache attribution slots,
// the displaced-tag map's nodes and buckets from its PoolResource,
// scheduler runqueues within vector capacity — so a steady-state tick
// is pure compute over already-owned memory.  This test replaces the
// global allocation functions with counting shims (this TU links into
// its own test binary, so the replacement is contained) and asserts
// that a measured window of ticks performs exactly zero allocations.
//
// The ASan/UBSan CI job runs this same binary, so a regression shows
// up both as a counted allocation here and as interceptor traffic
// there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "hv/credit_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "mem/patterns.hpp"
#include "workloads/pattern_workload.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(size ? size : 1);
  } else {
    if (posix_memalign(&p, align, size ? size : align) != 0) p = nullptr;
  }
  return p;
}

}  // namespace

// Counting replacements for the whole allocation surface this binary
// can hit.  They must pair with the matching frees below (never the
// library defaults), so every route ends in std::malloc/std::free.
void* operator new(std::size_t size) {
  void* p = counted_alloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace kyoto::hv {
namespace {

std::unique_ptr<workloads::Workload> endless_mix(const char* name, Bytes ws,
                                                 double mem_ratio, bool sequential,
                                                 workloads::StreamVersion stream,
                                                 std::uint64_t seed) {
  workloads::WorkloadSpec spec;
  spec.name = name;
  spec.mem_ratio = mem_ratio;
  spec.write_ratio = 0.3;
  spec.mlp = sequential ? 2.0 : 1.0;
  spec.length = 0;  // endless: no run-completion/reset path in the window
  spec.stream = stream;
  std::unique_ptr<mem::Pattern> pattern;
  if (sequential) {
    pattern = std::make_unique<mem::SequentialPattern>(ws);
  } else {
    pattern = std::make_unique<mem::UniformRandomPattern>(ws);
  }
  return std::make_unique<workloads::PatternWorkload>(spec, std::move(pattern), seed);
}

TEST(ZeroAlloc, SteadyStateTickLoopDoesNotTouchTheHeap) {
  const MachineConfig machine = scaled_machine();
  const cache::MemSystemConfig& mem = machine.mem;
  Hypervisor hv(machine, std::make_unique<CreditScheduler>());

  // One VM per core, mixing both stream formats and both access
  // patterns: the v2 VMs drive the ref-batch engine (arena storage),
  // the random ones churn the LLC's displaced-tag map (pool storage),
  // and four runnable vCPUs keep the scheduler's runqueues rotating.
  hv.create_vm(VmConfig{.name = "rand_v2"},
               endless_mix("rand_v2", mem.llc.size * 3, 0.8, false,
                           workloads::StreamVersion::kV2, 5),
               /*core=*/0);
  hv.create_vm(VmConfig{.name = "seq_v2"},
               endless_mix("seq_v2", mem.llc.size / 2, 0.6, true,
                           workloads::StreamVersion::kV2, 6),
               /*core=*/1);
  hv.create_vm(VmConfig{.name = "rand_v1"},
               endless_mix("rand_v1", mem.llc.size * 2, 0.7, false,
                           workloads::StreamVersion::kV1, 7),
               /*core=*/2);
  hv.create_vm(VmConfig{.name = "seq_v1"},
               endless_mix("seq_v1", mem.l2.size / 2, 0.6, true,
                           workloads::StreamVersion::kV1, 8),
               /*core=*/3);

  // Warm-up: long enough for the displaced-tag window to reach its
  // steady span (insert + prune per miss), every runqueue rotation to
  // have happened, and all lazily-grown stat storage to exist.
  hv.run_ticks(40);

  g_allocations.store(0);
  g_armed.store(true);
  hv.run_ticks(12);
  g_armed.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "the steady-state tick loop allocated; a hot-path container is "
         "growing (or a new path heap-allocates per tick)";

  // The window genuinely executed work (the gate is not vacuous).
  for (Vm* vm : hv.vms()) {
    EXPECT_GT(vm->counters().get(pmc::Counter::kInstructions), 0u) << vm->config().name;
  }
}

// Churn gate: admit/evict cycles recycle the destroyed vCPUs'
// arena ref-blocks, so once the live-VM high-water mark is reached
// the exec arena stops growing — and a quiesced tick loop after heavy
// churn history is still allocation-free (the displaced-tag pool and
// per-id vectors reached their steady span).
TEST(ZeroAlloc, SteadyStateChurnStopsGrowingTheArena) {
  const MachineConfig machine = scaled_machine();
  const cache::MemSystemConfig& mem = machine.mem;
  Hypervisor hv(machine, std::make_unique<CreditScheduler>());

  hv.create_vm(VmConfig{.name = "static"},
               endless_mix("static", mem.llc.size * 2, 0.7, false,
                           workloads::StreamVersion::kV2, 3),
               /*core=*/0);

  std::uint64_t seed = 50;
  const auto churn_generation = [&](int generations) {
    for (int gen = 0; gen < generations; ++gen) {
      std::vector<int> ids;
      for (int core = 1; core < 4; ++core) {
        ids.push_back(hv.create_vm(VmConfig{.name = "tenant"},
                                   endless_mix("tenant", mem.llc.size, 0.7,
                                               core == 2, workloads::StreamVersion::kV2,
                                               seed++),
                                   core)
                          .id());
      }
      hv.run_ticks(6);
      for (int id : ids) hv.destroy_vm(id);
      hv.run_ticks(2);
    }
  };

  churn_generation(3);  // reach the live-VM high-water mark
  const std::size_t reserved = hv.exec_arena().bytes_reserved();
  const std::size_t used = hv.exec_arena().bytes_used();

  churn_generation(4);  // steady state: every block comes from recycling
  EXPECT_EQ(hv.exec_arena().bytes_reserved(), reserved)
      << "churn grew the exec arena past the high-water mark; ref-block "
         "recycling is broken";
  EXPECT_EQ(hv.exec_arena().bytes_used(), used);

  // Quiesced ticks after the churn history are still allocation-free.
  churn_generation(1);
  hv.run_ticks(20);
  g_allocations.store(0);
  g_armed.store(true);
  hv.run_ticks(12);
  g_armed.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "the post-churn steady-state tick loop allocated";
}

}  // namespace
}  // namespace kyoto::hv
