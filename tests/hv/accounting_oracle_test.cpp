// Frozen-reference accounting oracle — the tick-control-plane
// analogue of tests/cache/random_oracle_test.cpp.
//
// The branch-light engines (branchless credit/CFS accounting, mask
// Kyoto gates, batched PMU deltas, identity-switch fast path) claim
// bit-identity with the pre-rework control flow.  That pre-rework
// code is kept verbatim in-tree as the reference engine
// (Hypervisor::set_control_plane_engine(false) selects it everywhere
// at once: eager switch-out/in plus the branchy scheduler and
// controller paths).  This suite drives both engines — and a third
// instance that flips engines mid-run — through ~100 randomized tick
// sequences (random VM mixes, weights, caps, llc_cap bookings, punish
// modes, migrations, churn departures and arrivals) and compares the
// full observable accounting state word-for-word after every step:
// virtualized counters, sched/idle ticks, credit/vruntime state, cap
// budgets and the controller's quota/punish records, doubles compared
// by bit pattern.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "hv/cfs_scheduler.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::hv {
namespace {

enum class Kind { kCredit, kCfs, kKs4Xen, kKs4XenDemote, kKs4Linux, kKs4Pisces };

bool is_kyoto(Kind k) { return k != Kind::kCredit && k != Kind::kCfs; }
bool is_pisces(Kind k) { return k == Kind::kKs4Pisces; }

std::unique_ptr<Scheduler> make_scheduler(Kind kind) {
  core::KyotoParams params;
  switch (kind) {
    case Kind::kCredit: return std::make_unique<CreditScheduler>();
    case Kind::kCfs: return std::make_unique<CfsScheduler>();
    case Kind::kKs4Xen:
      return std::make_unique<core::Ks4Xen>(std::make_unique<core::DirectPmcMonitor>(),
                                            params);
    case Kind::kKs4XenDemote:
      params.punish_mode = core::PunishMode::kDemote;
      return std::make_unique<core::Ks4Xen>(std::make_unique<core::DirectPmcMonitor>(),
                                            params);
    case Kind::kKs4Linux:
      return std::make_unique<core::Ks4Linux>(std::make_unique<core::DirectPmcMonitor>(),
                                              params);
    case Kind::kKs4Pisces:
      return std::make_unique<core::Ks4Pisces>(std::make_unique<core::DirectPmcMonitor>(),
                                               params);
  }
  return nullptr;
}

const core::PollutionController* controller_of(Kind kind, Hypervisor& hv) {
  switch (kind) {
    case Kind::kKs4Xen:
    case Kind::kKs4XenDemote:
      return &static_cast<core::Ks4Xen&>(hv.scheduler()).kyoto();
    case Kind::kKs4Linux:
      return &static_cast<core::Ks4Linux&>(hv.scheduler()).kyoto();
    case Kind::kKs4Pisces:
      return &static_cast<core::Ks4Pisces&>(hv.scheduler()).kyoto();
    default: return nullptr;
  }
}

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

/// Everything the control plane computes, serialized word-for-word.
std::vector<std::uint64_t> snapshot(Kind kind, Hypervisor& hv) {
  std::vector<std::uint64_t> out;
  out.push_back(static_cast<std::uint64_t>(hv.now()));
  const int cores = hv.machine().topology().total_cores();
  for (int core = 0; core < cores; ++core) {
    out.push_back(static_cast<std::uint64_t>(hv.idle_ticks(core)));
  }
  for (int id = 0; id < hv.vm_count(); ++id) {
    Vm* vm = hv.find_vm(id);
    out.push_back(vm != nullptr ? 1u : 0u);
    if (vm == nullptr) continue;
    const pmc::CounterSet counters = vm->counters();
    for (const std::uint64_t v : counters.values) out.push_back(v);
    for (const auto& vcpu : vm->vcpus()) {
      out.push_back(static_cast<std::uint64_t>(hv.sched_ticks(*vcpu)));
      out.push_back(static_cast<std::uint64_t>(vcpu->cpu_cycles()));
      switch (kind) {
        case Kind::kCredit:
        case Kind::kKs4Xen:
        case Kind::kKs4XenDemote: {
          const auto& cs = static_cast<const CreditScheduler&>(hv.scheduler());
          out.push_back(static_cast<std::uint64_t>(
              static_cast<std::int64_t>(cs.remain_credit(*vcpu))));
          out.push_back(cs.in_over(*vcpu) ? 1u : 0u);
          out.push_back(bits(cs.cap_budget_fraction(*vcpu)));
          break;
        }
        case Kind::kCfs:
        case Kind::kKs4Linux: {
          const auto& cfs = static_cast<const CfsScheduler&>(hv.scheduler());
          out.push_back(bits(cfs.vruntime(*vcpu)));
          break;
        }
        case Kind::kKs4Pisces: break;
      }
    }
  }
  if (const core::PollutionController* ctl = controller_of(kind, hv)) {
    // state_by_id is valid for departed tenants too — the frozen final
    // record must match across engines as well.
    for (int id = 0; id < hv.vm_count(); ++id) {
      const auto& st = ctl->state_by_id(id);
      out.push_back(bits(st.booked));
      out.push_back(bits(st.quota));
      out.push_back(bits(st.last_rate));
      out.push_back(bits(st.debited_total));
      out.push_back(st.punished ? 1u : 0u);
      out.push_back(static_cast<std::uint64_t>(st.punish_events));
      out.push_back(static_cast<std::uint64_t>(st.punished_ticks));
    }
  }
  return out;
}

struct VmPlanOracle {
  std::string app;
  std::uint64_t seed = 1;
  int core = 0;
  int weight = 256;
  int cap = 0;
  double llc_cap = 0.0;
  bool loop = true;
};

struct Step {
  int ticks = 1;
  enum class Op { kNone, kMigrate, kDestroy, kCreate } op = Op::kNone;
  int pick = 0;     // victim/mover selector (mod live VMs)
  int core = 0;     // migration/creation target
  VmPlanOracle plan;  // kCreate payload
};

Vm& spawn(Hypervisor& hv, const VmPlanOracle& plan) {
  VmConfig config{.name = plan.app};
  config.weight = plan.weight;
  config.cpu_cap_percent = plan.cap;
  config.llc_cap = plan.llc_cap;
  config.loop_workload = plan.loop;
  return hv.create_vm(config,
                      workloads::make_app(plan.app, test::test_machine().mem, plan.seed),
                      plan.core);
}

void apply(Hypervisor& hv, const Step& step) {
  std::vector<Vm*> live = hv.vms();
  switch (step.op) {
    case Step::Op::kNone: break;
    case Step::Op::kMigrate: {
      Vm* vm = live[static_cast<std::size_t>(step.pick) % live.size()];
      hv.migrate(vm->vcpu(0), step.core);
      break;
    }
    case Step::Op::kDestroy:
      if (live.size() > 1) {
        hv.destroy_vm(live[static_cast<std::size_t>(step.pick) % live.size()]->id());
      }
      break;
    case Step::Op::kCreate: spawn(hv, step.plan); break;
  }
  hv.run_ticks(step.ticks);
}

VmPlanOracle random_plan(std::mt19937_64& rng, Kind kind, int core) {
  static const char* kApps[] = {"gcc", "lbm", "hmmer"};
  VmPlanOracle plan;
  plan.app = kApps[rng() % 3];
  plan.seed = rng() % 1000 + 1;
  plan.core = core;
  plan.weight = 1 << (7 + rng() % 3);  // 128 / 256 / 512
  plan.cap = (rng() % 3 == 0) ? static_cast<int>(30 + rng() % 60) : 0;
  plan.loop = rng() % 4 != 0;
  if (is_kyoto(kind)) {
    // Tight bookings on some VMs so punish transitions actually fire.
    plan.llc_cap = (rng() % 3 != 0) ? 0.5 + static_cast<double>(rng() % 40) : 0.0;
  }
  return plan;
}

/// One randomized round: identical initial placements, an identical
/// event script, three instances (reference / batched / mid-run
/// toggler), snapshots compared after every step.
void run_round(Kind kind, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int cores = test::test_machine().topology.total_cores();

  std::vector<VmPlanOracle> initial;
  if (is_pisces(kind)) {
    // Pisces enclaves own their cores: one single-vCPU VM per core.
    for (int core = 0; core < cores; ++core) {
      initial.push_back(random_plan(rng, kind, core));
    }
  } else {
    const int nvms = 2 + static_cast<int>(rng() % 5);
    for (int i = 0; i < nvms; ++i) {
      initial.push_back(random_plan(rng, kind, static_cast<int>(rng() % cores)));
    }
  }

  std::vector<Step> script;
  const int steps = 6 + static_cast<int>(rng() % 4);
  for (int i = 0; i < steps; ++i) {
    Step step;
    step.ticks = 1 + static_cast<int>(rng() % 5);
    const auto roll = rng() % 8;
    if (roll == 0 && !is_pisces(kind)) {
      step.op = Step::Op::kMigrate;
      step.pick = static_cast<int>(rng() % 16);
      step.core = static_cast<int>(rng() % cores);
    } else if (roll == 1) {
      step.op = Step::Op::kDestroy;
      step.pick = static_cast<int>(rng() % 16);
    } else if (roll == 2 && !is_pisces(kind)) {
      step.op = Step::Op::kCreate;
      step.plan = random_plan(rng, kind, static_cast<int>(rng() % cores));
    }
    script.push_back(step);
  }

  Hypervisor reference(test::test_machine(), make_scheduler(kind));
  Hypervisor batched(test::test_machine(), make_scheduler(kind));
  Hypervisor toggler(test::test_machine(), make_scheduler(kind));
  reference.set_control_plane_engine(false);
  ASSERT_FALSE(reference.batched_control_plane());
  ASSERT_TRUE(batched.batched_control_plane());

  for (const VmPlanOracle& plan : initial) {
    spawn(reference, plan);
    spawn(batched, plan);
    spawn(toggler, plan);
  }

  bool toggle = false;
  for (std::size_t i = 0; i < script.size(); ++i) {
    apply(reference, script[i]);
    apply(batched, script[i]);
    // The engines share state and may be swapped at any tick
    // boundary; the toggler flips every step and must still match.
    toggler.set_control_plane_engine(toggle);
    toggle = !toggle;
    apply(toggler, script[i]);

    const auto want = snapshot(kind, reference);
    ASSERT_EQ(want, snapshot(kind, batched))
        << "batched diverged: seed " << seed << " step " << i;
    ASSERT_EQ(want, snapshot(kind, toggler))
        << "toggler diverged: seed " << seed << " step " << i;
  }
  EXPECT_EQ(reference.identity_switch_ticks(), 0);
}

TEST(AccountingOracle, CreditMatchesFrozenReference) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) run_round(Kind::kCredit, 0xC0'0000 + seed);
}

TEST(AccountingOracle, CfsMatchesFrozenReference) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) run_round(Kind::kCfs, 0xCF'0000 + seed);
}

TEST(AccountingOracle, Ks4XenBlockMatchesFrozenReference) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) run_round(Kind::kKs4Xen, 0x4E'0000 + seed);
}

TEST(AccountingOracle, Ks4XenDemoteMatchesFrozenReference) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    run_round(Kind::kKs4XenDemote, 0xDE'0000 + seed);
  }
}

TEST(AccountingOracle, Ks4LinuxMatchesFrozenReference) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    run_round(Kind::kKs4Linux, 0x11'0000 + seed);
  }
}

TEST(AccountingOracle, Ks4PiscesMatchesFrozenReference) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    run_round(Kind::kKs4Pisces, 0x25'0000 + seed);
  }
}

TEST(AccountingOracle, FastPathEngagesInSteadyState) {
  // A single looping VM keeps its core every tick: every pick after
  // the first is an identity switch under the batched engine, and
  // never under the reference engine.
  Hypervisor batched(test::test_machine(), std::make_unique<CreditScheduler>());
  Hypervisor reference(test::test_machine(), std::make_unique<CreditScheduler>());
  reference.set_control_plane_engine(false);
  VmConfig config{.name = "steady"};
  config.loop_workload = true;
  batched.create_vm(config, workloads::make_app("gcc", test::test_machine().mem, 1), 0);
  reference.create_vm(config, workloads::make_app("gcc", test::test_machine().mem, 1), 0);
  batched.run_ticks(12);
  reference.run_ticks(12);
  EXPECT_EQ(batched.identity_switch_ticks(), 11);
  EXPECT_EQ(reference.identity_switch_ticks(), 0);
  EXPECT_EQ(batched.vm(0).counters(), reference.vm(0).counters());
}

}  // namespace
}  // namespace kyoto::hv
