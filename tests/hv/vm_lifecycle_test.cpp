// VM destruction (churn departures) against the teardown contract:
// schedulers must forget the vCPUs, freed cores must be reusable, LLC
// attribution must stay exact against the O(lines) recount oracles
// with the inflicted == suffered conservation law intact, and an
// in-flight socket-dedication campaign must abort cleanly when its
// target (or a displaced co-runner) departs.
#include <gtest/gtest.h>

#include <memory>

#include "hv/cfs_scheduler.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "kyoto/monitor.hpp"
#include "sim/churn_engine.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::hv {
namespace {

std::unique_ptr<workloads::Workload> app(const char* name, const MachineConfig& machine,
                                         std::uint64_t seed) {
  return workloads::make_app(name, machine.mem, seed);
}

VmConfig looping(const std::string& name) {
  VmConfig config;
  config.name = name;
  config.loop_workload = true;
  return config;
}

/// Sums inflicted/suffered cross-evictions over every VM id ever
/// allocated (pollution records outlive their VMs) and every socket.
std::pair<std::uint64_t, std::uint64_t> conservation_sums(Hypervisor& hv) {
  std::uint64_t inflicted = 0, suffered = 0;
  const auto& topo = hv.machine().topology();
  for (int socket = 0; socket < topo.sockets; ++socket) {
    const cache::SetAssocCache& llc = hv.machine().memory().llc(socket);
    for (int id = 0; id < hv.vm_count(); ++id) {
      const cache::VmPollution& p = llc.pollution_for_vm(id);
      inflicted += p.cross_evictions_inflicted;
      suffered += p.cross_evictions_suffered;
    }
  }
  return {inflicted, suffered};
}

void expect_oracles_exact(Hypervisor& hv) {
  const auto& topo = hv.machine().topology();
  const auto& geometry = hv.machine().config().mem.llc;
  const double total_lines = static_cast<double>(geometry.size / geometry.line);
  for (int socket = 0; socket < topo.sockets; ++socket) {
    const cache::SetAssocCache& llc = hv.machine().memory().llc(socket);
    // Incremental valid-line counter (behind occupancy()) vs recount.
    EXPECT_DOUBLE_EQ(llc.occupancy(),
                     static_cast<double>(llc.recount_valid_lines()) / total_lines);
    for (int id = -1; id < hv.vm_count(); ++id) {
      EXPECT_EQ(llc.footprint_lines(id), llc.recount_footprint_lines(id))
          << "socket " << socket << " vm " << id;
    }
  }
}

template <typename SchedulerT>
void admit_evict_cycles() {
  const MachineConfig machine = test::test_machine();
  Hypervisor hv(machine, std::make_unique<SchedulerT>());
  for (int core = 0; core < 4; ++core) {
    hv.create_vm(looping("gen0-" + std::to_string(core)),
                 app("gcc", machine, 10 + static_cast<std::uint64_t>(core)), core);
  }
  hv.run_ticks(6);

  // Three generations of churn over cores 1 and 3.
  int next_seed = 100;
  int on_core1 = 1, on_core3 = 3;
  for (int gen = 0; gen < 3; ++gen) {
    const int evict_a = on_core1;
    const int evict_b = on_core3;
    hv.destroy_vm(evict_a);
    hv.destroy_vm(evict_b);
    EXPECT_EQ(hv.find_vm(evict_a), nullptr);
    EXPECT_EQ(hv.live_vm_count(), 2);
    hv.run_ticks(3);  // scheduler must not pick the departed vCPUs

    Vm& a = hv.create_vm(looping("gen" + std::to_string(gen + 1) + "-1"),
                         app("mcf", machine, static_cast<std::uint64_t>(next_seed++)), 1);
    Vm& b = hv.create_vm(looping("gen" + std::to_string(gen + 1) + "-3"),
                         app("gcc", machine, static_cast<std::uint64_t>(next_seed++)), 3);
    on_core1 = a.id();
    on_core3 = b.id();
    hv.run_ticks(6);
    EXPECT_GT(a.counters().get(pmc::Counter::kInstructions), 0u);
    EXPECT_GT(b.counters().get(pmc::Counter::kInstructions), 0u);
    EXPECT_EQ(hv.live_vm_count(), 4);
  }
  EXPECT_EQ(hv.vm_count(), 4 + 3 * 2);  // ids are never reused
}

TEST(VmLifecycle, CreditSchedulerSurvivesAdmitEvictCycles) {
  admit_evict_cycles<CreditScheduler>();
}

TEST(VmLifecycle, CfsSchedulerSurvivesAdmitEvictCycles) {
  admit_evict_cycles<CfsScheduler>();
}

TEST(VmLifecycle, PiscesSchedulerSurvivesAdmitEvictCycles) {
  admit_evict_cycles<PiscesScheduler>();
}

TEST(VmLifecycle, LlcAttributionStaysExactAcrossChurn) {
  const MachineConfig machine = test::test_machine();
  Hypervisor hv(machine, std::make_unique<CreditScheduler>());
  for (int core = 0; core < 4; ++core) {
    hv.create_vm(looping("vm" + std::to_string(core)),
                 app(core % 2 == 0 ? "mcf" : "gcc", machine,
                     20 + static_cast<std::uint64_t>(core)),
                 core);
  }
  hv.run_ticks(9);
  expect_oracles_exact(hv);

  // Destroy a polluter: its lines vanish with exact bookkeeping, its
  // pollution record survives as statistics, and the conservation law
  // is untouched (release generates no cross-eviction events).
  const auto [inflicted_before, suffered_before] = conservation_sums(hv);
  EXPECT_EQ(inflicted_before, suffered_before);
  EXPECT_GT(inflicted_before, 0u) << "scenario did not contend; the gate is vacuous";
  hv.destroy_vm(0);
  expect_oracles_exact(hv);
  for (int socket = 0; socket < machine.topology.sockets; ++socket) {
    EXPECT_EQ(hv.machine().memory().llc(socket).footprint_lines(0), 0u);
  }
  const auto [inflicted_mid, suffered_mid] = conservation_sums(hv);
  EXPECT_EQ(inflicted_mid, inflicted_before);
  EXPECT_EQ(suffered_mid, suffered_before);

  // Keep running with a replacement tenant: the law must keep holding
  // while the freed ways are re-filled.
  hv.create_vm(looping("tenant"), app("mcf", machine, 99), 0);
  hv.run_ticks(9);
  expect_oracles_exact(hv);
  const auto [inflicted_after, suffered_after] = conservation_sums(hv);
  EXPECT_EQ(inflicted_after, suffered_after);
  EXPECT_GT(inflicted_after, inflicted_mid);
}

TEST(VmLifecycle, DedicationCampaignAbortsWhenTargetDeparts) {
  const MachineConfig machine = test::test_numa_machine();
  auto scheduler = std::make_unique<core::Ks4Xen>(
      std::make_unique<core::SocketDedicationMonitor>());
  Hypervisor hv(machine, std::move(scheduler));
  // Two loud VMs sharing socket 0: the round-robin campaign targets
  // vm0 first and displaces vm1 to socket 1.
  Vm& vm0 = hv.create_vm(looping("target"), app("mcf", machine, 1), 0);
  Vm& vm1 = hv.create_vm(looping("corunner"), app("mcf", machine, 2), 1);
  (void)vm0;

  // First campaign step fires at tick 12 (default sample period).
  hv.run_ticks(13);
  const int cores_per_socket = machine.topology.cores_per_socket;
  ASSERT_GE(vm1.vcpu(0).pinned_core(), cores_per_socket)
      << "campaign did not displace the co-runner; the abort path is untested";

  // Target departs mid-campaign: the displaced co-runner must come
  // home immediately, not after a window that can never finish.
  hv.destroy_vm(0);
  EXPECT_EQ(vm1.vcpu(0).pinned_core(), 1);
  hv.run_ticks(30);  // monitor keeps cycling without the departed VM
  EXPECT_GT(vm1.counters().get(pmc::Counter::kInstructions), 0u);
}

TEST(VmLifecycle, DedicationSurvivesDisplacedVmDeparting) {
  const MachineConfig machine = test::test_numa_machine();
  Hypervisor hv(machine, std::make_unique<core::Ks4Xen>(
                             std::make_unique<core::SocketDedicationMonitor>()));
  Vm& vm0 = hv.create_vm(looping("target"), app("mcf", machine, 1), 0);
  hv.create_vm(looping("departing"), app("mcf", machine, 2), 1);

  hv.run_ticks(13);
  // Destroy the displaced vCPU's VM while it is parked on socket 1:
  // the monitor must forget it (never migrate it back).
  hv.destroy_vm(1);
  hv.run_ticks(30);
  EXPECT_GT(vm0.counters().get(pmc::Counter::kInstructions), 0u);
  EXPECT_EQ(hv.live_vm_count(), 1);
}

// The run_scenario reporting fix: VMs that departed mid-window are
// excluded, VMs admitted mid-window get a zero baseline, and the
// static VM's row is still present and keyed correctly.
TEST(VmLifecycle, RunScenarioToleratesMidWindowChurn) {
  sim::RunSpec spec = test::quick_spec(/*warmup=*/3, /*measure=*/24);
  auto churn = std::make_shared<sim::ChurnPlan>();
  // One tenant alive across the window start that departs inside the
  // window, and one arriving inside the window that stays.
  churn->explicit_trace = {{0, 12}, {15, 0}};
  churn->tenant_config.loop_workload = true;
  churn->apps = {test::app_factory("gcc", spec.machine)};
  churn->app_ids = {"gcc"};
  spec.churn = churn;

  sim::VmPlan victim;
  victim.config = looping("victim");
  victim.workload = test::app_factory("gcc", spec.machine);
  victim.pinned_cores = {0};

  const sim::RunOutcome outcome = sim::run_scenario(spec, {victim});
  ASSERT_EQ(outcome.vms.size(), 2u);  // victim + the surviving tenant
  EXPECT_EQ(outcome.vms[0].name, "victim");
  EXPECT_EQ(outcome.vms[1].name, "tenant-1");
  EXPECT_GT(outcome.vms[0].instructions, 0u);
  // The late tenant was measured only from admission (zero baseline),
  // over at most 12 of the 24 window ticks on an identical core — so
  // its window total must stay below the victim's.
  EXPECT_GT(outcome.vms[1].instructions, 0u);
  EXPECT_LT(outcome.vms[1].instructions, outcome.vms[0].instructions);
}

// --- identity-switch fast path edge cases ----------------------------
//
// The batched control plane leaves a steady-state vCPU switched in
// across ticks (lazy PMU delta).  Every event that consumes or
// invalidates that delta — destroy_vm, migrate, a monitor-style
// counter read, a churn arrival onto the vacated core — must see
// exactly the state the eager reference engine would produce.  Each
// test runs a batched instance against an eager twin executing the
// same script and compares counters bitwise, using
// identity_switch_ticks() to prove the fast path was actually
// engaged (not vacuously skipped).

/// Builds one batched + one eager-reference hypervisor pair running
/// the same initial VMs.
struct TwinPair {
  Hypervisor batched;
  Hypervisor eager;
  TwinPair()
      : batched(test::test_machine(), std::make_unique<CreditScheduler>()),
        eager(test::test_machine(), std::make_unique<CreditScheduler>()) {
    eager.set_control_plane_engine(false);
  }
  void spawn(const std::string& name, const char* workload, std::uint64_t seed, int core) {
    const MachineConfig machine = test::test_machine();
    batched.create_vm(looping(name), app(workload, machine, seed), core);
    eager.create_vm(looping(name), app(workload, machine, seed), core);
  }
  void run(Tick n) {
    batched.run_ticks(n);
    eager.run_ticks(n);
  }
  void expect_counters_equal(const char* what) {
    ASSERT_EQ(batched.vm_count(), eager.vm_count());
    for (int id = 0; id < batched.vm_count(); ++id) {
      Vm* b = batched.find_vm(id);
      Vm* e = eager.find_vm(id);
      ASSERT_EQ(b == nullptr, e == nullptr) << what << ": vm " << id;
      if (b != nullptr) EXPECT_EQ(b->counters(), e->counters()) << what << ": vm " << id;
    }
  }
};

TEST(IdentitySwitch, DestroyVmMidSteadyStateFlushesLazyDelta) {
  TwinPair twins;
  twins.spawn("resident", "mcf", 1, 0);
  twins.spawn("bystander", "gcc", 2, 1);
  twins.run(8);
  ASSERT_GT(twins.batched.identity_switch_ticks(), 0);
  // Destroy while resident: the multi-tick in-flight delta must land
  // in the final accounting record, not evaporate.
  twins.batched.destroy_vm(0);
  twins.eager.destroy_vm(0);
  twins.expect_counters_equal("after destroy");
  twins.run(5);
  twins.expect_counters_equal("after post-destroy ticks");
}

TEST(IdentitySwitch, MigrateAfterIdentityTicksFlushesAgainstOldCore) {
  TwinPair twins;
  twins.spawn("mover", "mcf", 1, 0);
  twins.run(7);
  const auto before = twins.batched.identity_switch_ticks();
  ASSERT_GT(before, 0);
  // Migrate off the fast-path core: the lazy delta folds against the
  // OLD core's PMU before the pin changes.
  twins.batched.migrate(twins.batched.vm(0).vcpu(0), 2);
  twins.eager.migrate(twins.eager.vm(0).vcpu(0), 2);
  twins.expect_counters_equal("right after migrate");
  twins.run(7);
  twins.expect_counters_equal("after re-settling");
  // The vCPU re-enters the fast path on its new core.
  EXPECT_GT(twins.batched.identity_switch_ticks(), before);
}

TEST(IdentitySwitch, CounterReadsSeeInFlightLazyDelta) {
  TwinPair twins;
  twins.spawn("watched", "mcf", 1, 0);
  // Read mid-steady-state every tick, exactly where monitors read
  // (tick boundaries): the resident vCPU's delta spans several ticks
  // but Vm::counters() must match the eager engine at every boundary.
  for (int i = 0; i < 9; ++i) {
    twins.run(1);
    twins.expect_counters_equal("tick boundary read");
  }
  EXPECT_GT(twins.batched.identity_switch_ticks(), 0);
}

TEST(IdentitySwitch, ChurnArrivalOntoFastPathCore) {
  TwinPair twins;
  twins.spawn("incumbent", "mcf", 1, 0);
  twins.spawn("neighbor", "gcc", 2, 1);
  twins.run(8);
  ASSERT_GT(twins.batched.identity_switch_ticks(), 0);
  // Churn: the incumbent departs, a new tenant lands on the same core
  // (the scheduler now alternates picks on core 0 while the arrival
  // warms up — a real switch, then steady state again).
  twins.batched.destroy_vm(0);
  twins.eager.destroy_vm(0);
  twins.spawn("arrival", "gcc", 3, 0);
  const auto at_arrival = twins.batched.identity_switch_ticks();
  twins.run(8);
  twins.expect_counters_equal("after arrival settles");
  // The arrival reaches the fast path too.
  EXPECT_GT(twins.batched.identity_switch_ticks(), at_arrival);
}

TEST(IdentitySwitch, KyotoPunishStateUnaffectedByLazyResidency) {
  // A Ks4Xen twin pair with a tightly booked polluter: quota debits
  // and punish transitions (computed from per-tick RunReports, not
  // the lazy accumulation) must agree bitwise while the fast path is
  // engaged on both cores.
  const MachineConfig machine = test::test_machine();
  Hypervisor batched(machine, std::make_unique<core::Ks4Xen>());
  Hypervisor eager(machine, std::make_unique<core::Ks4Xen>());
  eager.set_control_plane_engine(false);
  for (Hypervisor* hv : {&batched, &eager}) {
    VmConfig booked = looping("polluter");
    booked.llc_cap = 1.0;  // tight: punish oscillation within a few slices
    hv->create_vm(booked, app("mcf", machine, 1), 0);
    hv->create_vm(looping("victim"), app("gcc", machine, 2), 1);
  }
  batched.run_ticks(18);
  eager.run_ticks(18);
  ASSERT_GT(batched.identity_switch_ticks(), 0);
  const auto& bk = static_cast<core::Ks4Xen&>(batched.scheduler()).kyoto();
  const auto& ek = static_cast<core::Ks4Xen&>(eager.scheduler()).kyoto();
  for (int id = 0; id < 2; ++id) {
    const auto& bs = bk.state_by_id(id);
    const auto& es = ek.state_by_id(id);
    EXPECT_EQ(bs.quota, es.quota) << id;
    EXPECT_EQ(bs.debited_total, es.debited_total) << id;
    EXPECT_EQ(bs.punished, es.punished) << id;
    EXPECT_EQ(bs.punish_events, es.punish_events) << id;
    EXPECT_EQ(bs.punished_ticks, es.punished_ticks) << id;
  }
  EXPECT_GT(bk.state_by_id(0).punish_events, 0) << "polluter never punished; gate vacuous";
}

}  // namespace
}  // namespace kyoto::hv
