// Multi-vCPU VM semantics: scheduling, completion, Kyoto punishment
// (a VM's quota is shared by all its vCPUs — §3.3 assumes vCPUs of
// one VM behave alike, and Fig 6 colocates up to 15 disruptive
// vCPUs).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hv/credit_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "kyoto/ks4xen.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::hv {
namespace {

std::vector<std::unique_ptr<workloads::Workload>> n_workloads(const char* app, int n) {
  std::vector<std::unique_ptr<workloads::Workload>> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(workloads::make_app(app, test::test_machine().mem,
                                      static_cast<std::uint64_t>(i) + 1));
  }
  return out;
}

TEST(MultiVcpu, VcpusRunOnTheirOwnCores) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  VmConfig config{.name = "wide"};
  config.loop_workload = true;
  Vm& vm = hv.create_vm(config, n_workloads("gcc", 3), {0, 1, 2});
  hv.run_ticks(6);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(hv.sched_ticks(vm.vcpu(i)), 6) << i;
  EXPECT_EQ(hv.idle_ticks(3), 6);
}

TEST(MultiVcpu, VmDoneOnlyWhenAllVcpusComplete) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  // vCPU 0 alone on core 0 finishes sooner than vCPU 1, which shares
  // core 1 with a competitor.
  VmConfig config{.name = "pair"};
  Vm& vm = hv.create_vm(config, n_workloads("hmmer", 2), {0, 1});
  VmConfig other{.name = "competitor"};
  other.loop_workload = true;
  hv.create_vm(other, workloads::make_app("gcc", test::test_machine().mem, 9), 1);

  hv.run_until([&] { return vm.vcpu(0).completed_runs() > 0; }, 4000);
  ASSERT_GT(vm.vcpu(0).completed_runs(), 0);
  EXPECT_FALSE(vm.done());  // vCPU 1 still working
  hv.run_until([&] { return vm.done(); }, 8000);
  EXPECT_TRUE(vm.done());
}

TEST(MultiVcpu, SixteenVcpusPerSocketSchedule) {
  // Fig 6's consolidation level: 16 vCPUs over 4 cores, all runnable.
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  std::vector<Vm*> vms;
  for (int i = 0; i < 16; ++i) {
    VmConfig config{.name = "vm" + std::to_string(i)};
    config.loop_workload = true;
    vms.push_back(&hv.create_vm(
        config, workloads::make_app("gcc", test::test_machine().mem,
                                    static_cast<std::uint64_t>(i)), i % 4));
  }
  hv.run_ticks(96);
  // Every vCPU gets close to its fair quarter of a core.
  for (Vm* vm : vms) {
    EXPECT_NEAR(static_cast<double>(hv.sched_ticks(vm->vcpu(0))), 24.0, 8.0) << vm->name();
  }
  for (int core = 0; core < 4; ++core) EXPECT_EQ(hv.idle_ticks(core), 0) << core;
}

TEST(MultiVcpu, PunishmentBlocksEveryVcpuOfTheVm) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<core::Ks4Xen>());
  VmConfig config{.name = "wide-polluter"};
  config.loop_workload = true;
  config.llc_cap = 1.0;  // tiny permit, shared by both vCPUs
  Vm& vm = hv.create_vm(config, n_workloads("lbm", 2), {0, 1});
  hv.run_ticks(45);
  const auto& ctl = static_cast<core::Ks4Xen&>(hv.scheduler()).kyoto();
  EXPECT_TRUE(ctl.state(vm).punished);
  // Both vCPUs starve together: the quota is VM-level.
  EXPECT_LT(hv.sched_ticks(vm.vcpu(0)), 10);
  EXPECT_LT(hv.sched_ticks(vm.vcpu(1)), 10);
}

TEST(MultiVcpu, BothVcpusDebitTheSharedQuota) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<core::Ks4Xen>());
  VmConfig config{.name = "wide"};
  config.loop_workload = true;
  config.llc_cap = 1e9;  // never punished; we only check accounting
  Vm& vm = hv.create_vm(config, n_workloads("lbm", 2), {0, 1});
  hv.run_ticks(9);
  const auto& ctl = static_cast<core::Ks4Xen&>(hv.scheduler()).kyoto();
  const double debited = ctl.state(vm).debited_total;
  const double misses = static_cast<double>(
      vm.counters().get(pmc::Counter::kLlcMisses));
  EXPECT_NEAR(debited, misses, misses * 1e-9 + 1e-6);
  EXPECT_GT(vm.vcpu(0).cpu_cycles(), 0);
  EXPECT_GT(vm.vcpu(1).cpu_cycles(), 0);
}

}  // namespace
}  // namespace kyoto::hv
