#include "hv/credit_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hv/hypervisor.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::hv {
namespace {

std::unique_ptr<workloads::Workload> app(const char* name, std::uint64_t seed = 1) {
  return workloads::make_app(name, test::test_machine().mem, seed);
}

VmConfig looping(const char* name) {
  VmConfig c{.name = name};
  c.loop_workload = true;
  return c;
}

TEST(CreditScheduler, SingleVmRunsEveryTick) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  Vm& vm = hv.create_vm(looping("a"), app("gcc"), 0);
  hv.run_ticks(12);
  EXPECT_EQ(hv.sched_ticks(vm.vcpu(0)), 12);
  EXPECT_EQ(hv.idle_ticks(0), 0);
}

TEST(CreditScheduler, EqualWeightsShareCoreFairly) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 0);
  Vm& b = hv.create_vm(looping("b"), app("gcc", 2), 0);
  hv.run_ticks(60);
  const auto ta = hv.sched_ticks(a.vcpu(0));
  const auto tb = hv.sched_ticks(b.vcpu(0));
  EXPECT_EQ(ta + tb, 60);
  EXPECT_NEAR(static_cast<double>(ta), 30.0, 3.0);
}

TEST(CreditScheduler, WeightsBiasCpuShare) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  VmConfig heavy = looping("heavy");
  heavy.weight = 512;
  VmConfig light = looping("light");
  light.weight = 256;
  Vm& a = hv.create_vm(heavy, app("gcc", 1), 0);
  Vm& b = hv.create_vm(light, app("gcc", 2), 0);
  hv.run_ticks(90);
  const double ratio = static_cast<double>(hv.sched_ticks(a.vcpu(0))) /
                       static_cast<double>(hv.sched_ticks(b.vcpu(0)));
  EXPECT_GT(ratio, 1.4);  // roughly 2:1
  EXPECT_LT(ratio, 2.8);
}

TEST(CreditScheduler, CapLimitsCpuEvenWhenIdle) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  VmConfig capped = looping("capped");
  capped.cpu_cap_percent = 50;
  Vm& vm = hv.create_vm(capped, app("gcc"), 0);
  hv.run_ticks(60);
  // Xen cap semantics: ~50% of the core's cycles even though the core
  // is otherwise idle.
  const double total_cycles = static_cast<double>(60 * hv.machine().cycles_per_tick());
  const double used = static_cast<double>(vm.vcpu(0).cpu_cycles());
  EXPECT_NEAR(used / total_cycles, 0.50, 0.05);
  EXPECT_GT(hv.idle_ticks(0), 15);  // at least one fully idle tick per slice
}

TEST(CreditScheduler, CapZeroMeansUncapped) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  Vm& vm = hv.create_vm(looping("a"), app("gcc"), 0);
  hv.run_ticks(30);
  EXPECT_EQ(hv.sched_ticks(vm.vcpu(0)), 30);
  EXPECT_DOUBLE_EQ(
      static_cast<CreditScheduler&>(hv.scheduler()).cap_budget_fraction(vm.vcpu(0)), 1.0);
}

TEST(CreditScheduler, CapSweepIsProportional) {
  // The Fig 3 lever: higher cap => proportionally more CPU cycles.
  for (int cap : {20, 40, 60, 80, 100}) {
    Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
    VmConfig c = looping("dis");
    c.cpu_cap_percent = cap;
    Vm& vm = hv.create_vm(c, app("lbm"), 0);
    hv.run_ticks(60);
    const double total = static_cast<double>(60 * hv.machine().cycles_per_tick());
    const double share = static_cast<double>(vm.vcpu(0).cpu_cycles()) / total;
    EXPECT_NEAR(share, cap / 100.0, 0.05) << "cap " << cap;
  }
}

TEST(CreditScheduler, WorkConservingOverPriority) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  // One uncapped VM alone: it must run even after burning its slice
  // credits (OVER priority is work conserving).
  Vm& vm = hv.create_vm(looping("a"), app("gcc"), 0);
  hv.run_ticks(kTicksPerSlice * 4);
  EXPECT_EQ(hv.sched_ticks(vm.vcpu(0)), kTicksPerSlice * 4);
  const auto& cs = static_cast<CreditScheduler&>(hv.scheduler());
  EXPECT_LE(cs.remain_credit(vm.vcpu(0)), CreditScheduler::kCreditPerSlice);
}

TEST(CreditScheduler, CreditsRefillEachSlice) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 0);
  auto& cs = static_cast<CreditScheduler&>(hv.scheduler());
  const int initial = cs.remain_credit(a.vcpu(0));
  hv.run_ticks(kTicksPerSlice);  // slice boundary refills
  EXPECT_EQ(cs.remain_credit(a.vcpu(0)), initial);  // burned then refilled, clamped
}

TEST(CreditScheduler, DoneVcpuFreesCore) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  Vm& fin = hv.create_vm(VmConfig{.name = "finite"}, app("hmmer", 1), 0);
  Vm& loop = hv.create_vm(looping("loop"), app("gcc", 2), 0);
  hv.run_until([&] { return fin.done(); }, 3000);
  ASSERT_TRUE(fin.done());
  const auto loop_before = hv.sched_ticks(loop.vcpu(0));
  hv.run_ticks(10);
  EXPECT_EQ(hv.sched_ticks(loop.vcpu(0)), loop_before + 10);
}

TEST(CreditScheduler, RoundRobinAmongThree) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 0);
  Vm& b = hv.create_vm(looping("b"), app("gcc", 2), 0);
  Vm& c = hv.create_vm(looping("c"), app("gcc", 3), 0);
  hv.run_ticks(90);
  for (Vm* vm : {&a, &b, &c}) {
    EXPECT_NEAR(static_cast<double>(hv.sched_ticks(vm->vcpu(0))), 30.0, 5.0) << vm->name();
  }
}

TEST(CreditScheduler, UnregisteredVcpuQueriesThrow) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  Hypervisor hv2(test::test_machine(), std::make_unique<CreditScheduler>());
  Vm& foreign = hv2.create_vm(looping("x"), app("gcc"), 0);
  auto& cs = static_cast<CreditScheduler&>(hv.scheduler());
  EXPECT_THROW(cs.remain_credit(foreign.vcpu(0)), std::logic_error);
}

TEST(CreditScheduler, PinnedVcpusStayOnTheirCores) {
  Hypervisor hv(test::test_machine(), std::make_unique<CreditScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 2);
  hv.run_ticks(5);
  EXPECT_EQ(hv.sched_ticks(a.vcpu(0)), 5);
  EXPECT_EQ(hv.idle_ticks(0), 5);
  EXPECT_EQ(hv.idle_ticks(2), 0);
}

}  // namespace
}  // namespace kyoto::hv
