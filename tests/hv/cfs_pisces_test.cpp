#include <gtest/gtest.h>

#include <memory>

#include "hv/cfs_scheduler.hpp"
#include "hv/hypervisor.hpp"
#include "hv/pisces.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::hv {
namespace {

std::unique_ptr<workloads::Workload> app(const char* name, std::uint64_t seed = 1) {
  return workloads::make_app(name, test::test_machine().mem, seed);
}

VmConfig looping(const char* name) {
  VmConfig c{.name = name};
  c.loop_workload = true;
  return c;
}

// --- CFS ----------------------------------------------------------------

TEST(Cfs, SingleTaskRunsAlways) {
  Hypervisor hv(test::test_machine(), std::make_unique<CfsScheduler>());
  Vm& vm = hv.create_vm(looping("a"), app("gcc"), 0);
  hv.run_ticks(10);
  EXPECT_EQ(hv.sched_ticks(vm.vcpu(0)), 10);
}

TEST(Cfs, EqualWeightsFairShare) {
  Hypervisor hv(test::test_machine(), std::make_unique<CfsScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 0);
  Vm& b = hv.create_vm(looping("b"), app("gcc", 2), 0);
  hv.run_ticks(60);
  EXPECT_NEAR(static_cast<double>(hv.sched_ticks(a.vcpu(0))), 30.0, 3.0);
  EXPECT_NEAR(static_cast<double>(hv.sched_ticks(b.vcpu(0))), 30.0, 3.0);
}

TEST(Cfs, WeightBiasesShare) {
  Hypervisor hv(test::test_machine(), std::make_unique<CfsScheduler>());
  VmConfig heavy = looping("heavy");
  heavy.weight = 768;  // 3x default
  Vm& a = hv.create_vm(heavy, app("gcc", 1), 0);
  Vm& b = hv.create_vm(looping("light"), app("gcc", 2), 0);
  hv.run_ticks(80);
  const double ratio = static_cast<double>(hv.sched_ticks(a.vcpu(0))) /
                       static_cast<double>(hv.sched_ticks(b.vcpu(0)));
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);
}

TEST(Cfs, VruntimeAdvancesWhileRunning) {
  Hypervisor hv(test::test_machine(), std::make_unique<CfsScheduler>());
  Vm& vm = hv.create_vm(looping("a"), app("gcc"), 0);
  auto& cfs = static_cast<CfsScheduler&>(hv.scheduler());
  const double v0 = cfs.vruntime(vm.vcpu(0));
  hv.run_ticks(3);
  EXPECT_GT(cfs.vruntime(vm.vcpu(0)), v0);
}

TEST(Cfs, LateJoinerStartsAtQueueMin) {
  Hypervisor hv(test::test_machine(), std::make_unique<CfsScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 0);
  hv.run_ticks(30);
  // A task joining now must not get a huge backlog of CPU.
  Vm& b = hv.create_vm(looping("b"), app("gcc", 2), 0);
  auto& cfs = static_cast<CfsScheduler&>(hv.scheduler());
  EXPECT_GE(cfs.vruntime(b.vcpu(0)), cfs.vruntime(a.vcpu(0)) * 0.99);
  const auto a_before = hv.sched_ticks(a.vcpu(0));
  hv.run_ticks(20);
  // a still gets CPU; b does not monopolize.
  EXPECT_GT(hv.sched_ticks(a.vcpu(0)), a_before + 5);
}

TEST(Cfs, MigrationKeepsFairness) {
  Hypervisor hv(test::test_machine(), std::make_unique<CfsScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 0);
  Vm& b = hv.create_vm(looping("b"), app("gcc", 2), 1);
  hv.run_ticks(10);
  hv.migrate(b.vcpu(0), 0);
  hv.run_ticks(40);
  const auto ta = hv.sched_ticks(a.vcpu(0));
  const auto tb = hv.sched_ticks(b.vcpu(0));
  // After migration both share core 0 roughly equally.
  EXPECT_NEAR(static_cast<double>(ta - tb), 0.0, 16.0);
}

// --- Pisces --------------------------------------------------------------

TEST(Pisces, EnclaveOwnsItsCore) {
  Hypervisor hv(test::test_machine(), std::make_unique<PiscesScheduler>());
  Vm& vm = hv.create_vm(looping("hpc"), app("gcc"), 2);
  hv.run_ticks(8);
  EXPECT_EQ(hv.sched_ticks(vm.vcpu(0)), 8);
  EXPECT_EQ(hv.idle_ticks(2), 0);
}

TEST(Pisces, RefusesCoreSharing) {
  Hypervisor hv(test::test_machine(), std::make_unique<PiscesScheduler>());
  hv.create_vm(looping("a"), app("gcc", 1), 0);
  EXPECT_THROW(hv.create_vm(looping("b"), app("gcc", 2), 0), std::logic_error);
}

TEST(Pisces, NoTimeSharingNoCredits) {
  // Two enclaves on two cores run every tick — no interference from
  // scheduling whatsoever.
  Hypervisor hv(test::test_machine(), std::make_unique<PiscesScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 0);
  Vm& b = hv.create_vm(looping("b"), app("lbm", 2), 1);
  hv.run_ticks(20);
  EXPECT_EQ(hv.sched_ticks(a.vcpu(0)), 20);
  EXPECT_EQ(hv.sched_ticks(b.vcpu(0)), 20);
}

TEST(Pisces, MigrationToFreeCoreWorks) {
  Hypervisor hv(test::test_machine(), std::make_unique<PiscesScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc"), 0);
  hv.run_ticks(2);
  hv.migrate(a.vcpu(0), 3);
  hv.run_ticks(2);
  EXPECT_EQ(hv.sched_ticks(a.vcpu(0)), 4);
}

TEST(Pisces, MigrationToOwnedCoreThrows) {
  Hypervisor hv(test::test_machine(), std::make_unique<PiscesScheduler>());
  Vm& a = hv.create_vm(looping("a"), app("gcc", 1), 0);
  hv.create_vm(looping("b"), app("gcc", 2), 1);
  EXPECT_THROW(hv.migrate(a.vcpu(0), 1), std::logic_error);
}

TEST(Pisces, DoneEnclaveIdlesItsCore) {
  Hypervisor hv(test::test_machine(), std::make_unique<PiscesScheduler>());
  Vm& vm = hv.create_vm(VmConfig{.name = "fin"}, app("hmmer"), 0);
  hv.run_until([&] { return vm.done(); }, 3000);
  ASSERT_TRUE(vm.done());
  const auto idle = hv.idle_ticks(0);
  hv.run_ticks(5);
  EXPECT_EQ(hv.idle_ticks(0), idle + 5);
}

}  // namespace
}  // namespace kyoto::hv
