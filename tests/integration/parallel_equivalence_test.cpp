// Acceptance gate of the per-socket parallel tick engine: a parallel
// run is not "close to" the serial run, it IS the serial run.
//
// Every scenario below is executed once with the serial engine
// (threads=1) and once per parallel lane count (threads=2, 4), and
// the runs must produce *byte-identical* traces: per-VM virtualized
// PMC counters captured every tick, the scheduler trace (per-vCPU
// scheduled-tick counts, per-core idle ticks, tick-by-tick), Kyoto
// monitor/controller readings (quota, punishment state, attributed
// rates), and the end-of-run cache-engine state (per-socket LLC
// totals, per-core and per-VM attribution, per-VM footprints, bus
// queue cycles, prefetch counts).  Coverage spans all six LLC
// replacement policies, both base schedulers (Xen credit and CFS),
// the three Kyoto monitors (including socket dedication, which
// migrates vCPUs across sockets between ticks), and 1/2/4-socket
// Table-1 machines — the geometry ROADMAP's later scaling PRs build
// on.
//
// If this suite fails, the parallel engine is wrong — never widen the
// comparison tolerance; it is exact equality by design.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hv/cfs_scheduler.hpp"
#include "hv/credit_scheduler.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto {
namespace {

/// Table-1 socket (4 cores) replicated `sockets` times, scaled memory
/// system so runs stay fast.
hv::MachineConfig table1_machine(int sockets) {
  hv::MachineConfig config;  // scaled Table 1 defaults
  config.topology = cache::Topology{sockets, 4};
  return config;
}

struct Scenario {
  hv::MachineConfig machine;
  sim::SchedulerFactory scheduler;
  Tick ticks = 9;
  bool kyoto = false;  // capture controller state per tick
};

void append_u64(std::vector<std::uint64_t>& blob, std::uint64_t v) { blob.push_back(v); }
void append_f64(std::vector<std::uint64_t>& blob, double v) {
  blob.push_back(std::bit_cast<std::uint64_t>(v));
}

void append_cache_stats(std::vector<std::uint64_t>& blob, const cache::CacheStats& s) {
  append_u64(blob, s.accesses);
  append_u64(blob, s.hits);
  append_u64(blob, s.misses);
  append_u64(blob, s.evictions);
  append_u64(blob, s.writebacks);
}

/// Runs `scenario` with the given engine width and serializes
/// everything an experiment could ever read into one flat word blob.
std::vector<std::uint64_t> run_trace(const Scenario& scenario, int threads,
                                     bool batched_control_plane = true) {
  auto hv = std::make_unique<hv::Hypervisor>(scenario.machine, scenario.scheduler());
  hv->set_execution_threads(threads);
  hv->set_control_plane_engine(batched_control_plane);

  // One single-vCPU VM per core, mixing sensitive and disruptive
  // apps so LLC contention, punishment and migration all trigger.
  const std::vector<std::string> apps = {"gcc", "lbm", "mcf", "omnetpp"};
  const int cores = scenario.machine.topology.total_cores();
  for (int core = 0; core < cores; ++core) {
    hv::VmConfig config;
    config.name = apps[static_cast<std::size_t>(core) % apps.size()] + std::to_string(core);
    config.loop_workload = true;
    config.llc_cap = scenario.kyoto ? 25.0 : 0.0;
    config.home_node = scenario.machine.topology.socket_of(core);
    hv->create_vm(config,
                  workloads::make_app(apps[static_cast<std::size_t>(core) % apps.size()],
                                      scenario.machine.mem,
                                      /*seed=*/1000 + static_cast<std::uint64_t>(core)),
                  core);
  }

  const auto* controller = [&]() -> const core::PollutionController* {
    if (auto* ks = dynamic_cast<core::Ks4Xen*>(&hv->scheduler())) return &ks->kyoto();
    return nullptr;
  }();

  std::vector<std::uint64_t> blob;
  hv->add_tick_hook([&blob, controller](hv::Hypervisor& h, Tick now) {
    append_u64(blob, static_cast<std::uint64_t>(now));
    for (hv::Vm* vm : h.vms()) {
      const pmc::CounterSet counters = vm->counters();
      for (unsigned c = 0; c < pmc::kCounterCount; ++c) append_u64(blob, counters.values[c]);
      for (const auto& vcpu : vm->vcpus()) {
        append_u64(blob, static_cast<std::uint64_t>(h.sched_ticks(*vcpu)));
        append_u64(blob, static_cast<std::uint64_t>(vcpu->pinned_core()));
        append_u64(blob, static_cast<std::uint64_t>(vcpu->retired_total()));
        append_u64(blob, static_cast<std::uint64_t>(vcpu->cpu_cycles()));
      }
      if (controller != nullptr) {
        const auto& st = controller->state(*vm);
        append_f64(blob, st.quota);
        append_f64(blob, st.last_rate);
        append_f64(blob, st.debited_total);
        append_u64(blob, st.punished ? 1 : 0);
        append_u64(blob, static_cast<std::uint64_t>(st.punish_events));
        append_u64(blob, static_cast<std::uint64_t>(st.punished_ticks));
      }
    }
    const int total_cores = h.machine().topology().total_cores();
    for (int core = 0; core < total_cores; ++core) {
      append_u64(blob, static_cast<std::uint64_t>(h.idle_ticks(core)));
    }
  });

  hv->run_ticks(scenario.ticks);

  // End-of-run cache-engine state: the merge must leave every
  // attribution slot exactly where the serial engine leaves it.
  auto& memory = hv->machine().memory();
  const auto& topo = scenario.machine.topology;
  for (int socket = 0; socket < topo.sockets; ++socket) {
    const auto& llc = memory.llc(socket);
    append_cache_stats(blob, llc.stats());
    for (int core = 0; core < topo.total_cores(); ++core) {
      append_cache_stats(blob, llc.stats_for_core(core));
    }
    for (int vm = 0; vm < hv->vm_count(); ++vm) {
      append_cache_stats(blob, llc.stats_for_vm(vm));
      append_u64(blob, llc.footprint_lines(vm));
    }
    append_f64(blob, llc.occupancy());
    append_u64(blob, static_cast<std::uint64_t>(memory.bus_queue_cycles(socket)));
  }
  for (int core = 0; core < topo.total_cores(); ++core) {
    append_cache_stats(blob, memory.l1(core).stats());
    append_cache_stats(blob, memory.l2(core).stats());
    append_u64(blob, memory.prefetches_issued(core));
  }
  return blob;
}

void expect_identical(const Scenario& scenario, const std::string& label) {
  const std::vector<std::uint64_t> serial = run_trace(scenario, 1);
  ASSERT_FALSE(serial.empty()) << label;
  for (const int threads : {2, 4}) {
    const std::vector<std::uint64_t> parallel = run_trace(scenario, threads);
    ASSERT_EQ(serial.size(), parallel.size()) << label << " threads=" << threads;
    std::size_t first_diff = serial.size();
    for (std::size_t i = 0; i < serial.size(); ++i) {
      if (serial[i] != parallel[i]) {
        first_diff = i;
        break;
      }
    }
    EXPECT_EQ(first_diff, serial.size())
        << label << " threads=" << threads << ": first divergent word at index "
        << first_diff;
  }
}

sim::SchedulerFactory credit_factory() {
  return [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CreditScheduler>()); };
}

sim::SchedulerFactory cfs_factory() {
  return [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CfsScheduler>()); };
}

TEST(ParallelEquivalence, AllReplacementPoliciesOnTwoSockets) {
  for (const cache::ReplacementKind policy :
       {cache::ReplacementKind::kLru, cache::ReplacementKind::kPlru,
        cache::ReplacementKind::kRandom, cache::ReplacementKind::kLip,
        cache::ReplacementKind::kBip, cache::ReplacementKind::kDip}) {
    Scenario scenario;
    scenario.machine = table1_machine(2);
    scenario.machine.mem.llc_replacement = policy;
    scenario.scheduler = credit_factory();
    expect_identical(scenario,
                     std::string("policy=") + cache::replacement_name(policy));
  }
}

TEST(ParallelEquivalence, SocketCountsAndSchedulers) {
  for (const int sockets : {1, 2, 4}) {
    for (const bool cfs : {false, true}) {
      Scenario scenario;
      scenario.machine = table1_machine(sockets);
      scenario.scheduler = cfs ? cfs_factory() : credit_factory();
      scenario.ticks = sockets == 4 ? 7 : 9;
      expect_identical(scenario, "sockets=" + std::to_string(sockets) +
                                     (cfs ? " sched=cfs" : " sched=credit"));
    }
  }
}

TEST(ParallelEquivalence, KyotoMonitorsSeeMergedState) {
  // Each Kyoto monitor runs on the merged (post-epilogue) state; the
  // socket-dedication monitor additionally migrates vCPUs across
  // sockets between ticks, reshaping the partition every campaign.
  struct MonitorCase {
    std::string name;
    std::function<std::unique_ptr<core::PollutionMonitor>()> make;
  };
  const std::vector<MonitorCase> monitors = {
      {"direct", [] { return std::make_unique<core::DirectPmcMonitor>(); }},
      {"dedication",
       [] {
         core::SocketDedicationMonitor::Params params;
         params.sample_period_ticks = 3;  // force several campaigns in-window
         return std::make_unique<core::SocketDedicationMonitor>(params);
       }},
      {"mcsim", [] { return std::make_unique<core::McSimMonitor>(); }},
  };
  for (const auto& mc : monitors) {
    Scenario scenario;
    scenario.machine = table1_machine(2);
    scenario.kyoto = true;
    scenario.ticks = 12;
    auto make = mc.make;
    scenario.scheduler = [make] {
      return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Xen>(make()));
    };
    expect_identical(scenario, "monitor=" + mc.name);
  }
}

TEST(ParallelEquivalence, BusAndPrefetcherExtensions) {
  // The optional per-socket memory bus and the hardware prefetcher
  // exercise memory_miss_extras — the cold path that touches the
  // per-socket bus clock and per-core prefetch counters from inside
  // the partitions.
  Scenario scenario;
  scenario.machine = table1_machine(4);
  scenario.machine.mem.bus.enabled = true;
  scenario.machine.mem.prefetch.enabled = true;
  scenario.scheduler = credit_factory();
  scenario.ticks = 6;
  expect_identical(scenario, "bus+prefetch");
}

TEST(ParallelEquivalence, ControlPlaneEnginesCrossThreads) {
  // The identity-switch fast path and batched accounting live in the
  // serial prologue/epilogue, orthogonal to the execution partitions:
  // every (threads, engine) combination must produce the same trace
  // blob — including the per-tick Vm::counters() reads, which land on
  // in-flight lazy deltas under the batched engine.
  Scenario scenario;
  scenario.machine = table1_machine(2);
  scenario.scheduler = [] {
    return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Xen>());
  };
  scenario.kyoto = true;
  scenario.ticks = 12;
  const std::vector<std::uint64_t> want = run_trace(scenario, 1, /*batched=*/false);
  ASSERT_FALSE(want.empty());
  for (const int threads : {1, 2, 4}) {
    for (const bool batched : {false, true}) {
      if (threads == 1 && !batched) continue;  // the reference trace itself
      const std::vector<std::uint64_t> got = run_trace(scenario, threads, batched);
      EXPECT_EQ(want, got) << "threads=" << threads << " batched=" << batched;
    }
  }
}

TEST(ParallelEquivalence, ThreadsExceedingSocketsClampCleanly) {
  Scenario scenario;
  scenario.machine = table1_machine(2);
  scenario.scheduler = credit_factory();
  scenario.ticks = 6;
  const auto serial = run_trace(scenario, 1);
  const auto wide = run_trace(scenario, 16);  // > sockets, > host cores
  EXPECT_EQ(serial, wide);
}

}  // namespace
}  // namespace kyoto
