// Reproducibility properties: the whole simulation is a deterministic
// function of its seeds.  This is what makes every figure in
// EXPERIMENTS.md exactly regenerable.
#include <gtest/gtest.h>

#include <memory>

#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto {
namespace {

sim::RunOutcome run_once(std::uint64_t seed, sim::SchedulerFactory sched) {
  sim::RunSpec spec = test::quick_spec(3, 18);
  spec.seed = seed;
  spec.scheduler = std::move(sched);
  sim::VmPlan a;
  a.config.name = "gcc";
  a.config.llc_cap = 20.0;
  a.config.loop_workload = true;
  a.workload = test::app_factory("gcc", spec.machine);
  a.pinned_cores = {0};
  sim::VmPlan b;
  b.config.name = "lbm";
  b.config.llc_cap = 20.0;
  b.config.loop_workload = true;
  b.workload = test::app_factory("lbm", spec.machine);
  b.pinned_cores = {1};
  return sim::run_scenario(spec, {a, b});
}

TEST(Determinism, IdenticalSeedsGiveBitIdenticalCounters) {
  const auto xcs = [] {
    return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CreditScheduler>());
  };
  const auto r1 = run_once(42, xcs);
  const auto r2 = run_once(42, xcs);
  for (std::size_t i = 0; i < r1.vms.size(); ++i) {
    EXPECT_EQ(r1.vms[i].instructions, r2.vms[i].instructions) << i;
    EXPECT_EQ(r1.vms[i].cycles, r2.vms[i].cycles) << i;
    EXPECT_EQ(r1.vms[i].llc_misses, r2.vms[i].llc_misses) << i;
  }
}

TEST(Determinism, KyotoRunsAreReproducibleToo) {
  const auto ks = [] {
    return std::unique_ptr<hv::Scheduler>(std::make_unique<core::Ks4Xen>());
  };
  const auto r1 = run_once(7, ks);
  const auto r2 = run_once(7, ks);
  for (std::size_t i = 0; i < r1.vms.size(); ++i) {
    EXPECT_EQ(r1.vms[i].llc_misses, r2.vms[i].llc_misses) << i;
    EXPECT_EQ(r1.vms[i].punished_ticks, r2.vms[i].punished_ticks) << i;
  }
}

TEST(Determinism, DifferentSeedsPerturbMicroBehaviour) {
  const auto xcs = [] {
    return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CreditScheduler>());
  };
  const auto r1 = run_once(1, xcs);
  const auto r2 = run_once(2, xcs);
  // Different reference streams => different exact miss counts...
  EXPECT_NE(r1.vms[1].llc_misses, r2.vms[1].llc_misses);
  // ...but statistically equivalent behaviour (same workload model).
  const double a = static_cast<double>(r1.vms[1].llc_misses);
  const double b = static_cast<double>(r2.vms[1].llc_misses);
  EXPECT_NEAR(a / b, 1.0, 0.15);
}

TEST(Determinism, SeedsIsolateVcpusWithinAVm) {
  // Two vCPUs of one VM get distinct workload seeds: their chains
  // differ, so they do not walk the cache in lockstep.
  sim::RunSpec spec = test::quick_spec(2, 6);
  sim::VmPlan plan;
  plan.config.name = "multi";
  plan.config.loop_workload = true;
  plan.workload = test::app_factory("mcf", spec.machine);
  plan.pinned_cores = {0, 1};
  auto hv = sim::build_scenario(spec, {plan});
  hv->run_ticks(8);
  auto& vm = *hv->vms()[0];
  const auto c0 = vm.vcpu(0).counters().read();
  const auto c1 = vm.vcpu(1).counters().read();
  EXPECT_NE(c0.get(pmc::Counter::kLlcMisses), c1.get(pmc::Counter::kLlcMisses));
}

}  // namespace
}  // namespace kyoto
