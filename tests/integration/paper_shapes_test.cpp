// End-to-end checks of the paper's qualitative claims (DESIGN.md §5).
// These are scaled-down versions of the figures — the bench binaries
// reproduce them at full size; here we pin the *shapes* in CI.
#include <gtest/gtest.h>

#include <memory>

#include "hv/credit_scheduler.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto {
namespace {

using workloads::MicroClass;

sim::WorkloadFactory micro_rep(MicroClass cls, const hv::MachineConfig& mc) {
  const auto mem = mc.mem;
  return [cls, mem](std::uint64_t seed) {
    return workloads::micro_representative(cls, mem, seed);
  };
}

sim::WorkloadFactory micro_dis(MicroClass cls, const hv::MachineConfig& mc) {
  const auto mem = mc.mem;
  return [cls, mem](std::uint64_t seed) {
    return workloads::micro_disruptive(cls, mem, seed);
  };
}

double pair_degradation(sim::RunSpec spec, const sim::WorkloadFactory& rep,
                        const sim::WorkloadFactory& dis, bool parallel) {
  const auto solo = sim::run_solo(spec, rep, "rep");
  sim::VmPlan a;
  a.config.name = "rep";
  a.workload = rep;
  a.pinned_cores = {0};
  sim::VmPlan b;
  b.config.name = "dis";
  b.config.loop_workload = true;
  b.workload = dis;
  b.pinned_cores = {parallel ? 1 : 0};
  const auto outcome = sim::run_scenario(spec, {a, b});
  return sim::degradation_pct(solo.ipc, outcome.vms[0].ipc);
}

// --- Fig 1 shapes -------------------------------------------------------

TEST(Fig1Shape, IlcResidentVictimIsImmune) {
  sim::RunSpec spec = test::quick_spec(6, 30);
  for (const auto cls : {MicroClass::kC1, MicroClass::kC2, MicroClass::kC3}) {
    const double deg = pair_degradation(spec, micro_rep(MicroClass::kC1, spec.machine),
                                        micro_dis(cls, spec.machine), /*parallel=*/true);
    EXPECT_LT(deg, 5.0) << "C1 victim hurt by C" << static_cast<int>(cls) << " disruptor";
  }
}

TEST(Fig1Shape, IlcDisruptorIsHarmless) {
  sim::RunSpec spec = test::quick_spec(6, 30);
  for (const auto cls : {MicroClass::kC2, MicroClass::kC3}) {
    const double deg = pair_degradation(spec, micro_rep(cls, spec.machine),
                                        micro_dis(MicroClass::kC1, spec.machine), true);
    EXPECT_LT(deg, 5.0) << "C1 disruptor hurt C" << static_cast<int>(cls);
  }
}

TEST(Fig1Shape, LlcContentionHurtsC2AndC3) {
  sim::RunSpec spec = test::quick_spec(6, 30);
  const double c2 = pair_degradation(spec, micro_rep(MicroClass::kC2, spec.machine),
                                     micro_dis(MicroClass::kC3, spec.machine), true);
  const double c3 = pair_degradation(spec, micro_rep(MicroClass::kC3, spec.machine),
                                     micro_dis(MicroClass::kC3, spec.machine), true);
  EXPECT_GT(c2, 25.0);
  EXPECT_GT(c3, 10.0);
}

TEST(Fig1Shape, ParallelWorseThanAlternative) {
  sim::RunSpec spec = test::quick_spec(6, 30);
  const auto rep = micro_rep(MicroClass::kC2, spec.machine);
  const auto dis = micro_dis(MicroClass::kC3, spec.machine);
  const double par = pair_degradation(spec, rep, dis, true);
  const double alt = pair_degradation(spec, rep, dis, false);
  EXPECT_GT(par, alt * 1.5);
}

// --- Fig 3 shape ---------------------------------------------------------

TEST(Fig3Shape, DegradationGrowsWithDisruptorCap) {
  sim::RunSpec spec = test::quick_spec(6, 30);
  const auto gcc = test::app_factory("gcc", spec.machine);
  const auto lbm = test::app_factory("lbm", spec.machine);
  const auto solo = sim::run_solo(spec, gcc, "gcc");
  double prev = -100.0;
  for (int cap : {25, 50, 100}) {
    sim::VmPlan sen;
    sen.config.name = "gcc";
    sen.workload = gcc;
    sen.pinned_cores = {0};
    sim::VmPlan dis;
    dis.config.name = "lbm";
    dis.config.cpu_cap_percent = cap;
    dis.config.loop_workload = true;
    dis.workload = lbm;
    dis.pinned_cores = {1};
    const auto outcome = sim::run_scenario(spec, {sen, dis});
    const double deg = sim::degradation_pct(solo.ipc, outcome.vms[0].ipc);
    EXPECT_GT(deg, prev - 2.0) << "cap " << cap;  // monotone (within noise)
    prev = deg;
  }
  EXPECT_GT(prev, 10.0);  // full-cap disruptor hurts substantially
}

// --- Fig 8 shape ---------------------------------------------------------

TEST(Fig8Shape, PiscesLeaksLlcContentionAndKyotoClosesIt) {
  sim::RunSpec spec = test::quick_spec(6, 40);

  // Vanilla Pisces: dedicated cores, shared LLC.
  spec.scheduler = [] { return std::make_unique<hv::PiscesScheduler>(); };
  const auto gcc = test::app_factory("gcc", spec.machine);
  const auto solo = sim::run_solo(spec, gcc, "gcc");
  sim::VmPlan sen;
  sen.config.name = "gcc";
  sen.workload = gcc;
  sen.pinned_cores = {0};
  sim::VmPlan dis;
  dis.config.name = "lbm";
  dis.config.loop_workload = true;
  dis.workload = test::app_factory("lbm", spec.machine);
  dis.pinned_cores = {1};
  const auto pisces = sim::run_scenario(spec, {sen, dis});
  const double deg_pisces = sim::degradation_pct(solo.ipc, pisces.vms[0].ipc);
  EXPECT_GT(deg_pisces, 10.0);  // the isolation gap Pisces cannot close

  // KS4Pisces with permits.
  spec.scheduler = [] { return std::make_unique<core::Ks4Pisces>(); };
  const double permit = solo.llc_cap_act * 1.5 + 5.0;
  sen.config.llc_cap = permit;
  dis.config.llc_cap = permit;
  const auto ks = sim::run_scenario(spec, {sen, dis});
  const double deg_ks = sim::degradation_pct(solo.ipc, ks.vms[0].ipc);
  EXPECT_LT(deg_ks, deg_pisces / 2.0);
}

// --- Fig 12 shape ----------------------------------------------------------

TEST(Fig12Shape, KyotoOverheadIsNegligibleForCpuBoundVms) {
  // Two povray VMs sharing a core: KS4Xen must deliver the same
  // throughput as XCS (the monitoring adds no simulated cost and the
  // CPU-bound VMs never get punished).
  sim::RunSpec spec = test::quick_spec(3, 30);
  const auto povray = test::app_factory("povray", spec.machine);

  auto make_plans = [&](double cap) {
    sim::VmPlan a;
    a.config.name = "povray-1";
    a.config.llc_cap = cap;
    a.config.loop_workload = true;
    a.workload = povray;
    a.pinned_cores = {0};
    sim::VmPlan b = a;
    b.config.name = "povray-2";
    return std::vector<sim::VmPlan>{a, b};
  };

  spec.scheduler = [] { return std::make_unique<hv::CreditScheduler>(); };
  const auto xcs = sim::run_scenario(spec, make_plans(0.0));
  spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
  const auto ks = sim::run_scenario(spec, make_plans(1000.0));

  const double xcs_total = xcs.vms[0].throughput + xcs.vms[1].throughput;
  const double ks_total = ks.vms[0].throughput + ks.vms[1].throughput;
  EXPECT_NEAR(ks_total / xcs_total, 1.0, 0.05);
  EXPECT_EQ(ks.vms[0].punished_ticks, 0);
  EXPECT_EQ(ks.vms[1].punished_ticks, 0);
}

}  // namespace
}  // namespace kyoto
