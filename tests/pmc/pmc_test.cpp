#include <gtest/gtest.h>

#include "pmc/counters.hpp"
#include "pmc/perfctr.hpp"
#include "pmc/pmu.hpp"

namespace kyoto::pmc {
namespace {

TEST(CounterSet, ArithmeticAndAccessors) {
  CounterSet a;
  a.set(Counter::kInstructions, 100);
  a.add(Counter::kInstructions, 20);
  a.set(Counter::kLlcMisses, 7);
  EXPECT_EQ(a.get(Counter::kInstructions), 120u);

  CounterSet b;
  b.set(Counter::kInstructions, 20);
  b.set(Counter::kLlcMisses, 2);

  const CounterSet sum = a + b;
  EXPECT_EQ(sum.get(Counter::kInstructions), 140u);
  const CounterSet diff = a - b;
  EXPECT_EQ(diff.get(Counter::kInstructions), 100u);
  EXPECT_EQ(diff.get(Counter::kLlcMisses), 5u);
}

TEST(CounterSet, EqualityAndClear) {
  CounterSet a;
  a.set(Counter::kLlcReferences, 3);
  CounterSet b = a;
  EXPECT_EQ(a, b);
  b.clear();
  EXPECT_NE(a, b);
  EXPECT_EQ(b.get(Counter::kLlcReferences), 0u);
}

TEST(CounterSet, IpcComputation) {
  CounterSet a;
  EXPECT_DOUBLE_EQ(a.ipc(), 0.0);  // no cycles
  a.set(Counter::kInstructions, 300);
  a.set(Counter::kUnhaltedCycles, 600);
  EXPECT_DOUBLE_EQ(a.ipc(), 0.5);
}

TEST(CounterNames, Stable) {
  EXPECT_STREQ(counter_name(Counter::kInstructions), "instructions");
  EXPECT_STREQ(counter_name(Counter::kUnhaltedCycles), "unhalted_core_cycles");
  EXPECT_STREQ(counter_name(Counter::kLlcReferences), "llc_references");
  EXPECT_STREQ(counter_name(Counter::kLlcMisses), "llc_misses");
}

TEST(CorePmu, MonotonicAccumulation) {
  CorePmu pmu;
  pmu.add(Counter::kLlcMisses, 5);
  pmu.add(Counter::kLlcMisses, 3);
  EXPECT_EQ(pmu.read().get(Counter::kLlcMisses), 8u);
}

TEST(Perfctr, AttributesDeltasToRunningVcpu) {
  CorePmu pmu;
  VirtualCounters vcpu_a;
  VirtualCounters vcpu_b;

  // A runs: 10 misses happen.
  vcpu_a.switch_in(pmu);
  pmu.add(Counter::kLlcMisses, 10);
  vcpu_a.switch_out(pmu);

  // B runs: 4 misses happen.
  vcpu_b.switch_in(pmu);
  pmu.add(Counter::kLlcMisses, 4);
  vcpu_b.switch_out(pmu);

  EXPECT_EQ(vcpu_a.read().get(Counter::kLlcMisses), 10u);
  EXPECT_EQ(vcpu_b.read().get(Counter::kLlcMisses), 4u);
}

TEST(Perfctr, AccumulatesAcrossBursts) {
  CorePmu pmu;
  VirtualCounters v;
  for (int i = 0; i < 3; ++i) {
    v.switch_in(pmu);
    pmu.add(Counter::kInstructions, 100);
    v.switch_out(pmu);
    pmu.add(Counter::kInstructions, 50);  // someone else's instructions
  }
  EXPECT_EQ(v.read().get(Counter::kInstructions), 300u);
}

TEST(Perfctr, InFlightReadIncludesCurrentDelta) {
  CorePmu pmu;
  VirtualCounters v;
  v.switch_in(pmu);
  pmu.add(Counter::kLlcMisses, 6);
  // Reads are always exact: switch_in remembered the core, so the
  // in-flight delta is folded in with or without the optional hint.
  EXPECT_EQ(v.read().get(Counter::kLlcMisses), 6u);
  EXPECT_EQ(v.read(&pmu).get(Counter::kLlcMisses), 6u);
  v.switch_out(pmu);
  EXPECT_EQ(v.read().get(Counter::kLlcMisses), 6u);
}

TEST(Perfctr, ResidentAcrossIdentitySwitchesStaysExact) {
  // The identity-switch fast path leaves a vCPU switched in across
  // many ticks; the in-flight delta spans all of them and must read
  // exactly, then materialize once at the real switch-out.
  CorePmu pmu;
  VirtualCounters v;
  v.switch_in(pmu);
  pmu.add(Counter::kLlcMisses, 3);
  pmu.add(Counter::kLlcMisses, 4);  // a later "tick", no switch between
  EXPECT_EQ(v.read().get(Counter::kLlcMisses), 7u);
  v.switch_out(pmu);
  EXPECT_EQ(v.read().get(Counter::kLlcMisses), 7u);
}

TEST(Perfctr, ResetWhileRunningReanchorsWindow) {
  // A monitoring window opening on a resident vCPU must not inherit
  // the pre-window in-flight delta: reset re-anchors the snapshot.
  CorePmu pmu;
  VirtualCounters v;
  v.switch_in(pmu);
  pmu.add(Counter::kLlcMisses, 5);  // before the window
  v.reset();
  pmu.add(Counter::kLlcMisses, 2);  // inside the window
  EXPECT_EQ(v.read().get(Counter::kLlcMisses), 2u);
  v.switch_out(pmu);
  EXPECT_EQ(v.read().get(Counter::kLlcMisses), 2u);
}

TEST(Perfctr, DoubleSwitchInThrows) {
  CorePmu pmu;
  VirtualCounters v;
  v.switch_in(pmu);
  EXPECT_THROW(v.switch_in(pmu), std::logic_error);
}

TEST(Perfctr, SwitchOutWithoutInThrows) {
  CorePmu pmu;
  VirtualCounters v;
  EXPECT_THROW(v.switch_out(pmu), std::logic_error);
}

TEST(Perfctr, RunningFlag) {
  CorePmu pmu;
  VirtualCounters v;
  EXPECT_FALSE(v.running());
  v.switch_in(pmu);
  EXPECT_TRUE(v.running());
  v.switch_out(pmu);
  EXPECT_FALSE(v.running());
}

TEST(Perfctr, ResetForgetsHistoryButKeepsWindow) {
  CorePmu pmu;
  VirtualCounters v;
  v.switch_in(pmu);
  pmu.add(Counter::kLlcMisses, 9);
  v.switch_out(pmu);
  v.reset();
  EXPECT_EQ(v.read().get(Counter::kLlcMisses), 0u);
}

}  // namespace
}  // namespace kyoto::pmc
