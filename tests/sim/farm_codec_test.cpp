// Farm wire-format gate (sim/farm_codec.hpp).
//
// Three layers of protection:
//   1. Exact round-trips: decode(encode(x)) == x for every payload
//      kind, including doubles crossing as IEEE-754 bit patterns and
//      the RunOutcome completion fields.
//   2. Golden byte fixtures: the literal v1 byte layout is pinned
//      here.  If any of these fail, the wire format changed — either
//      revert, or bump kWireVersion and regenerate the fixtures.
//   3. Rejection: bad magic, wrong version, unknown type, oversized
//      length, checksum mismatch, truncated/trailing payload bytes
//      all raise CodecError — never UB, never a silent wrong value.
#include "sim/farm_codec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

namespace kyoto::sim::farm {
namespace {

FarmJob sample_job() {
  FarmJob job;
  job.id = 7;
  job.label = "fig";
  job.scenario_text = "x";
  return job;
}

RunOutcome sample_outcome() {
  RunOutcome outcome;
  outcome.measured_ticks = 12;
  outcome.completion_wall_cycles = 345;
  outcome.completion_ms = 1.5;
  VmMetrics m;
  m.name = "vm0";
  m.instructions = 1000;
  m.cycles = 2000;
  m.llc_references = 30;
  m.llc_misses = 4;
  m.ipc = 0.5;
  m.llc_cap_act = 12.25;
  m.throughput = 2.0;
  m.cpu_share_pct = 50.0;
  m.punish_events = 1;
  m.punished_ticks = 2;
  outcome.vms.push_back(m);
  return outcome;
}

/// Decodes exactly one frame from `bytes` and requires the stream to
/// end on its boundary.
Frame one_frame(const std::string& bytes) {
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  auto frame = reader.next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_EQ(reader.buffered(), 0u);
  return std::move(*frame);
}

TEST(FarmCodec, JobRoundTripIsExact) {
  FarmJob job;
  job.id = 0xdeadbeefcafeull;
  job.label = "fig11/dedicate/hmmer";
  job.scenario_text = "[machine]\ntopology = 1x2\n";  // content is opaque to the codec
  const Frame frame = one_frame(encode_frame(FrameType::kJob, encode_job(job)));
  EXPECT_EQ(frame.type, FrameType::kJob);
  EXPECT_EQ(decode_job(frame.payload), job);
}

TEST(FarmCodec, OutcomeRoundTripIsExact) {
  const RunOutcome outcome = sample_outcome();
  const Frame frame = one_frame(encode_frame(FrameType::kOutcome, encode_outcome(42, outcome)));
  EXPECT_EQ(frame.type, FrameType::kOutcome);
  const FarmOutcome decoded = decode_outcome(frame.payload);
  EXPECT_EQ(decoded.id, 42u);
  EXPECT_EQ(decoded.outcome, outcome);  // defaulted ==: every field, exactly
}

TEST(FarmCodec, DoublesSurviveBitExactly) {
  // The nastiest doubles must cross the wire unchanged: denormals,
  // negative zero, infinities, and a value with no short decimal form.
  RunOutcome outcome;
  outcome.completion_ms = 0.1 + 0.2;  // 0.30000000000000004
  VmMetrics m;
  m.ipc = std::numeric_limits<double>::denorm_min();
  m.llc_cap_act = -0.0;
  m.throughput = std::numeric_limits<double>::infinity();
  m.cpu_share_pct = std::numeric_limits<double>::max();
  outcome.vms.push_back(m);
  const FarmOutcome decoded =
      decode_outcome(one_frame(encode_frame(FrameType::kOutcome, encode_outcome(0, outcome)))
                         .payload);
  EXPECT_EQ(decoded.outcome, outcome);
}

TEST(FarmCodec, ErrorAndCheckpointHeaderRoundTrip) {
  const Frame error = one_frame(encode_frame(FrameType::kError, encode_error(3, "boom")));
  EXPECT_EQ(error.type, FrameType::kError);
  const FarmError decoded_error = decode_error(error.payload);
  EXPECT_EQ(decoded_error.id, 3u);
  EXPECT_EQ(decoded_error.message, "boom");

  CheckpointHeader header{0x1122334455667788ull, 5};
  const Frame ckpt = one_frame(
      encode_frame(FrameType::kCheckpointHeader, encode_checkpoint_header(header)));
  const CheckpointHeader decoded_header = decode_checkpoint_header(ckpt.payload);
  EXPECT_EQ(decoded_header.fingerprint, header.fingerprint);
  EXPECT_EQ(decoded_header.total_jobs, header.total_jobs);
}

// ------------------------------------------------------------ golden bytes
//
// These literals pin wire format v1 byte for byte.  They were captured
// from the encoder once; they must never be regenerated casually — a
// mismatch means old checkpoints and remote workers stopped being
// compatible, which requires a kWireVersion bump.

constexpr char kGoldenJob[] =
    "\x4b\x59\x46\x4d\x01\x00\x01\x00\x1c\x00\x00\x00\x00\x00\x00\x00\x07\x00\x00\x00\x00"
    "\x00\x00\x00\x03\x00\x00\x00\x00\x00\x00\x00\x66\x69\x67\x01\x00\x00\x00\x00\x00\x00"
    "\x00\x78\xc0\x0b\x50\x36\x33\xc7\xc3\x16";
constexpr std::size_t kGoldenJobLen = 52;

constexpr char kGoldenOutcome[] =
    "\x4b\x59\x46\x4d\x01\x00\x02\x00\x83\x00\x00\x00\x00\x00\x00\x00\x09\x00\x00\x00\x00"
    "\x00\x00\x00\x0c\x00\x00\x00\x00\x00\x00\x00\x59\x01\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\xf8\x3f\x01\x00\x00\x00\x00\x00\x00\x00\x03\x00\x00\x00\x00\x00\x00"
    "\x00\x76\x6d\x30\xe8\x03\x00\x00\x00\x00\x00\x00\xd0\x07\x00\x00\x00\x00\x00\x00\x1e"
    "\x00\x00\x00\x00\x00\x00\x00\x04\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\xe0\x3f\x00\x00\x00\x00\x00\x80\x28\x40\x00\x00\x00\x00\x00\x00\x00\x40\x00\x00\x00"
    "\x00\x00\x00\x49\x40\x01\x00\x00\x00\x00\x00\x00\x00\x02\x00\x00\x00\x00\x00\x00\x00"
    "\x89\x3b\x2c\x6e\x12\x42\x6b\x83";
constexpr std::size_t kGoldenOutcomeLen = 155;

constexpr char kGoldenError[] =
    "\x4b\x59\x46\x4d\x01\x00\x03\x00\x14\x00\x00\x00\x00\x00\x00\x00\x03\x00\x00\x00\x00"
    "\x00\x00\x00\x04\x00\x00\x00\x00\x00\x00\x00\x62\x6f\x6f\x6d\x61\x0c\xb1\xb8\x57\x29"
    "\x31\x27";
constexpr std::size_t kGoldenErrorLen = 44;

constexpr char kGoldenCheckpoint[] =
    "\x4b\x59\x46\x4d\x01\x00\x04\x00\x10\x00\x00\x00\x00\x00\x00\x00\x88\x77\x66\x55\x44"
    "\x33\x22\x11\x05\x00\x00\x00\x00\x00\x00\x00\x70\xcb\x28\x1d\xa0\x64\x5c\xc4";
constexpr std::size_t kGoldenCheckpointLen = 40;

TEST(FarmCodecGolden, JobFrameBytesArePinned) {
  const std::string encoded = encode_frame(FrameType::kJob, encode_job(sample_job()));
  EXPECT_EQ(encoded, std::string(kGoldenJob, kGoldenJobLen));
}

TEST(FarmCodecGolden, OutcomeFrameBytesArePinned) {
  const std::string encoded =
      encode_frame(FrameType::kOutcome, encode_outcome(9, sample_outcome()));
  EXPECT_EQ(encoded, std::string(kGoldenOutcome, kGoldenOutcomeLen));
}

TEST(FarmCodecGolden, ErrorFrameBytesArePinned) {
  EXPECT_EQ(encode_frame(FrameType::kError, encode_error(3, "boom")),
            std::string(kGoldenError, kGoldenErrorLen));
}

TEST(FarmCodecGolden, CheckpointHeaderBytesArePinned) {
  EXPECT_EQ(encode_frame(FrameType::kCheckpointHeader,
                         encode_checkpoint_header({0x1122334455667788ull, 5})),
            std::string(kGoldenCheckpoint, kGoldenCheckpointLen));
}

TEST(FarmCodecGolden, GoldenFramesDecode) {
  // The pinned bytes must also decode — catches an encoder+decoder
  // drifting together away from the v1 layout.
  const Frame job = one_frame(std::string(kGoldenJob, kGoldenJobLen));
  EXPECT_EQ(decode_job(job.payload), sample_job());
  const Frame outcome = one_frame(std::string(kGoldenOutcome, kGoldenOutcomeLen));
  const FarmOutcome decoded = decode_outcome(outcome.payload);
  EXPECT_EQ(decoded.id, 9u);
  EXPECT_EQ(decoded.outcome, sample_outcome());
}

// --------------------------------------------------------------- rejection

std::string valid_frame() { return encode_frame(FrameType::kJob, encode_job(sample_job())); }

std::optional<Frame> parse(const std::string& bytes) {
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  return reader.next();
}

TEST(FarmCodecReject, BadMagicThrowsImmediately) {
  std::string bytes = valid_frame();
  bytes[0] = 'X';
  EXPECT_THROW(parse(bytes), CodecError);
  // Even a 1-byte prefix with the wrong magic is rejected — no
  // buffering of a stream that can never become valid.
  FrameReader reader;
  reader.feed("Z", 1);
  EXPECT_THROW(reader.next(), CodecError);
}

TEST(FarmCodecReject, WrongVersionThrows) {
  std::string bytes = valid_frame();
  bytes[4] = 2;  // version field
  EXPECT_THROW(parse(bytes), CodecError);
}

TEST(FarmCodecReject, UnknownFrameTypeThrows) {
  std::string bytes = valid_frame();
  bytes[6] = 9;  // type field
  EXPECT_THROW(parse(bytes), CodecError);
}

TEST(FarmCodecReject, OversizedLengthThrows) {
  std::string bytes = valid_frame();
  for (int i = 8; i < 16; ++i) bytes[i] = '\xff';  // payload_len = 2^64-1
  EXPECT_THROW(parse(bytes), CodecError);
}

TEST(FarmCodecReject, ChecksumMismatchThrows) {
  std::string bytes = valid_frame();
  bytes[20] ^= 1;  // flip one payload bit; checksum no longer matches
  EXPECT_THROW(parse(bytes), CodecError);
}

TEST(FarmCodecReject, TruncatedPayloadDecodersThrow) {
  const std::string job = encode_job(sample_job());
  for (std::size_t cut = 0; cut < job.size(); ++cut) {
    EXPECT_THROW(decode_job(job.substr(0, cut)), CodecError) << "cut=" << cut;
  }
  const std::string outcome = encode_outcome(9, sample_outcome());
  EXPECT_THROW(decode_outcome(outcome.substr(0, outcome.size() - 1)), CodecError);
  // Trailing garbage after a well-formed payload is also rejected.
  EXPECT_THROW(decode_job(job + "Z"), CodecError);
  EXPECT_THROW(decode_checkpoint_header(std::string(17, '\0')), CodecError);
}

TEST(FarmCodecReject, WrongPayloadForDecoderThrows) {
  // A checkpoint header (16 bytes) fed to decode_error: id parses,
  // then the message length is absurd -> CodecError, not UB.
  const std::string ckpt = encode_checkpoint_header({~0ull, ~0ull});
  EXPECT_THROW(decode_error(ckpt), CodecError);
}

// ---------------------------------------------------------- streaming

TEST(FarmCodecStream, OneByteAtATimeFeedYieldsSameFrames) {
  const std::string stream = valid_frame() +
                             encode_frame(FrameType::kOutcome, encode_outcome(9, sample_outcome())) +
                             encode_frame(FrameType::kError, encode_error(3, "boom"));
  FrameReader reader;
  std::vector<Frame> frames;
  for (const char c : stream) {
    reader.feed(&c, 1);
    while (auto frame = reader.next()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kJob);
  EXPECT_EQ(frames[1].type, FrameType::kOutcome);
  EXPECT_EQ(frames[2].type, FrameType::kError);
  EXPECT_EQ(decode_outcome(frames[1].payload).outcome, sample_outcome());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FarmCodecStream, IncompleteFrameIsNotAnError) {
  const std::string bytes = valid_frame();
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size() - 5);
  EXPECT_EQ(reader.next(), std::nullopt);  // waiting, not failing
  EXPECT_GT(reader.buffered(), 0u);
  reader.feed(bytes.data() + bytes.size() - 5, 5);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FarmCodecStream, LongStreamCompactsItsBuffer) {
  // Thousands of frames through one reader: the lazy compaction must
  // keep this from accumulating every byte ever fed.
  FrameReader reader;
  const std::string frame = valid_frame();
  for (int i = 0; i < 5000; ++i) {
    reader.feed(frame.data(), frame.size());
    ASSERT_TRUE(reader.next().has_value());
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

// ------------------------------------------------------------ fingerprint

TEST(FarmCodec, BatchFingerprintSeparatesFields) {
  std::vector<FarmJob> a{{0, "ab", "c"}};
  std::vector<FarmJob> b{{0, "a", "bc"}};  // same concatenation, different split
  EXPECT_NE(batch_fingerprint(a), batch_fingerprint(b));
  std::vector<FarmJob> two{{0, "ab", "c"}, {1, "", ""}};
  EXPECT_NE(batch_fingerprint(a), batch_fingerprint(two));
  EXPECT_EQ(batch_fingerprint(a), batch_fingerprint({{99, "ab", "c"}}));  // id not part of key
}

// ------------------------------------------------------------- file pairs

class FarmCodecFiles : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return testing::TempDir() + "farm_codec_" + name + "_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".bin";
  }
};

TEST_F(FarmCodecFiles, JobAndResultFilesRoundTrip) {
  const std::string jobs_path = path("jobs");
  const std::string results_path = path("results");
  std::vector<FarmJob> jobs{{0, "a", "text-a"}, {1, "b", "text-b"}};
  write_job_file(jobs_path, jobs);
  EXPECT_EQ(read_job_file(jobs_path), jobs);

  std::vector<FarmOutcome> results{{0, sample_outcome()}, {1, RunOutcome{}}};
  write_result_file(results_path, results);
  EXPECT_EQ(read_result_file(results_path), results);
  std::remove(jobs_path.c_str());
  std::remove(results_path.c_str());
}

TEST_F(FarmCodecFiles, TruncatedFileIsRejected) {
  const std::string p = path("trunc");
  std::vector<FarmJob> jobs{{0, "a", "text-a"}};
  write_job_file(p, jobs);
  // Chop the last byte: the trailing frame is now incomplete.
  std::string bytes;
  {
    FILE* f = std::fopen(p.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = std::fread(buf, 1, sizeof buf, f);
    std::fclose(f);
    bytes.assign(buf, n - 1);
  }
  {
    FILE* f = std::fopen(p.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
  EXPECT_THROW(read_job_file(p), CodecError);
  EXPECT_THROW(read_result_file(p), CodecError);  // also the wrong frame kind
  std::remove(p.c_str());
}

TEST_F(FarmCodecFiles, MissingFileIsRejected) {
  EXPECT_THROW(read_job_file(path("never_written")), CodecError);
}

}  // namespace
}  // namespace kyoto::sim::farm
