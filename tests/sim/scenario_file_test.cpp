#include "sim/scenario_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hv/credit_scheduler.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/churn_engine.hpp"
#include "sim/sweep_runner.hpp"

namespace kyoto::sim {
namespace {

constexpr const char* kBasic = R"(
# two tenants under KS4Xen
[machine]
topology = 1x4
scale = 64

[scheduler]
kind = ks4xen
monitor = direct
punish = block

[vm tenant-a]
app = gcc
cores = 0
llc_cap = 20
loop = true

[vm noisy]
app = lbm
cores = 1
llc_cap = 20
loop = true

[run]
warmup_ticks = 3
measure_ticks = 12
)";

TEST(ScenarioFile, ParsesBasicScenario) {
  const Scenario s = parse_scenario(kBasic);
  EXPECT_EQ(s.plans.size(), 2u);
  EXPECT_EQ(s.vm_names[0], "tenant-a");
  EXPECT_EQ(s.plans[0].config.llc_cap, 20.0);
  EXPECT_TRUE(s.plans[1].config.loop_workload);
  EXPECT_EQ(s.plans[1].pinned_cores, std::vector<int>{1});
  EXPECT_EQ(s.spec.warmup_ticks, 3);
  EXPECT_EQ(s.spec.measure_ticks, 12);
  EXPECT_EQ(s.spec.machine.topology.total_cores(), 4);
  EXPECT_EQ(s.spec.machine.mem.llc.size, 160_KiB);  // paper/64
  // The scheduler factory builds a Ks4Xen.
  auto sched = s.spec.scheduler();
  EXPECT_NE(dynamic_cast<core::Ks4Xen*>(sched.get()), nullptr);
}

TEST(ScenarioFile, RunsEndToEnd) {
  const Scenario s = parse_scenario(kBasic);
  const auto report = run_scenario_report(s);
  EXPECT_NE(report.find("tenant-a"), std::string::npos);
  EXPECT_NE(report.find("noisy"), std::string::npos);
}

TEST(ScenarioFile, SweptScenariosMatchSerialReports) {
  // The scenario_runner path: several files executed as one sharded
  // sweep must render exactly the reports the serial path renders.
  const Scenario a = parse_scenario(kBasic);
  const Scenario b = parse_scenario(
      "[machine]\ntopology = 1x4\nscale = 64\n[vm solo]\napp = hmmer\n"
      "[run]\nwarmup_ticks = 3\nmeasure_ticks = 9\n");
  SweepRunner sweep(2);
  sweep.add(a.spec, a.plans, "a");
  sweep.add(b.spec, b.plans, "b");
  const auto outcomes = sweep.run();
  EXPECT_EQ(scenario_report(a, outcomes.at(0)), run_scenario_report(a));
  EXPECT_EQ(scenario_report(b, outcomes.at(1)), run_scenario_report(b));
  // The formatter refuses an outcome that does not belong to the
  // scenario (wrong VM count).
  EXPECT_THROW(scenario_report(a, outcomes.at(1)), std::logic_error);
}

TEST(ScenarioFile, ThreadsKeyWiresRunSpec) {
  const Scenario s = parse_scenario(
      "[vm a]\napp = gcc\n[run]\nthreads = 4\nmeasure_ticks = 6\n");
  EXPECT_EQ(s.spec.threads, 4);
  EXPECT_EQ(s.spec.measure_ticks, 6);
  EXPECT_EQ(parse_scenario("[vm a]\napp = gcc\n").spec.threads, 1);
}

TEST(ScenarioFile, DefaultsWhenSectionsOmitted) {
  const Scenario s = parse_scenario("[vm solo]\napp = hmmer\n");
  EXPECT_EQ(s.plans.size(), 1u);
  EXPECT_EQ(s.plans[0].pinned_cores, std::vector<int>{0});  // auto-assigned
  auto sched = s.spec.scheduler();
  EXPECT_NE(dynamic_cast<hv::CreditScheduler*>(sched.get()), nullptr);
}

TEST(ScenarioFile, MicroWorkloads) {
  const Scenario s = parse_scenario(
      "[vm rep]\napp = micro:c2rep\n[vm dis]\napp = micro:c3dis\ncores = 1\n");
  auto rep = s.plans[0].workload(1);
  auto dis = s.plans[1].workload(2);
  EXPECT_EQ(rep->spec().name, "v2rep");
  EXPECT_EQ(dis->spec().name, "v3dis");
}

TEST(ScenarioFile, MachineFeatures) {
  const Scenario s = parse_scenario(
      "[machine]\ntopology = 2x2\nprefetch = on:4\nbus = on:16\nllc_replacement = DIP\n"
      "[vm a]\napp = gcc\n");
  EXPECT_EQ(s.spec.machine.topology.sockets, 2);
  EXPECT_TRUE(s.spec.machine.mem.prefetch.enabled);
  EXPECT_EQ(s.spec.machine.mem.prefetch.degree, 4u);
  EXPECT_TRUE(s.spec.machine.mem.bus.enabled);
  EXPECT_EQ(s.spec.machine.mem.bus.transfer_cycles, 16);
  EXPECT_EQ(s.spec.machine.mem.llc_replacement, cache::ReplacementKind::kDip);
}

struct BadCase {
  const char* name;
  const char* text;
  const char* expect_substr;
};

class ScenarioErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioErrorTest, RejectsWithUsefulMessage) {
  try {
    parse_scenario(GetParam().text);
    FAIL() << "expected parse failure for " << GetParam().name;
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().expect_substr), std::string::npos)
        << "actual message: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllErrors, ScenarioErrorTest,
    ::testing::Values(
        BadCase{"unknown_section", "[warp]\n", "unknown section"},
        BadCase{"key_outside_section", "x = 1\n", "outside any section"},
        BadCase{"missing_equals", "[machine]\ntopology\n", "expected key"},
        BadCase{"unknown_machine_key", "[machine]\ncolour = red\n", "unknown [machine]"},
        BadCase{"bad_topology", "[machine]\ntopology = 4\n", "SxC"},
        BadCase{"bad_number", "[machine]\nfreq_khz = fast\n", "number"},
        BadCase{"unknown_app", "[vm a]\napp = doom\n", "unknown application"},
        BadCase{"bad_micro", "[vm a]\napp = micro:c9rep\n", "micro"},
        BadCase{"missing_app", "[vm a]\nllc_cap = 5\n", "missing app"},
        BadCase{"core_out_of_range", "[vm a]\napp = gcc\ncores = 9\n", "out of range"},
        BadCase{"unknown_sched", "[scheduler]\nkind = warp\n[vm a]\napp = gcc\n",
                "unknown scheduler"},
        BadCase{"bad_punish", "[scheduler]\npunish = flog\n", "punish"},
        BadCase{"no_vms", "[machine]\ntopology = 1x4\n", "no [vm]"},
        BadCase{"bad_bool", "[vm a]\napp = gcc\nloop = perhaps\n", "boolean"},
        BadCase{"bad_threads", "[vm a]\napp = gcc\n[run]\nthreads = 0\n",
                "threads must be >= 1"},
        BadCase{"bad_replacement", "[machine]\nllc_replacement = FIFO\n",
                "replacement"},
        BadCase{"bad_stream", "[workload]\nstream = v3\n[vm a]\napp = gcc\n",
                "stream must be v1 or v2"},
        BadCase{"bad_workload_key", "[workload]\nspeed = fast\n[vm a]\napp = gcc\n",
                "unknown [workload] key"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(ScenarioFile, WorkloadStreamKeySelectsV2) {
  const Scenario s = parse_scenario(
      "[workload]\nstream = v2\n[vm a]\napp = blockie\n[vm b]\napp = micro:c2dis\n");
  EXPECT_EQ(s.stream, workloads::StreamVersion::kV2);
  // Factories were built with the opted-in version.
  for (const auto& plan : s.plans) {
    const auto w = plan.workload(7);
    EXPECT_EQ(w->stream_version(), workloads::StreamVersion::kV2);
  }
}

TEST(ScenarioFile, WorkloadStreamAppliesWhereverTheSectionAppears) {
  // Factories are built after the whole file is parsed, so a
  // [workload] section after the [vm] sections still applies.
  const Scenario s = parse_scenario("[vm a]\napp = lbm\n[workload]\nstream = v2\n");
  EXPECT_EQ(s.plans[0].workload(3)->stream_version(), workloads::StreamVersion::kV2);
}

TEST(ScenarioFile, WorkloadStreamDefaultsToV1) {
  const Scenario s = parse_scenario("[vm a]\napp = gcc\n");
  EXPECT_EQ(s.stream, workloads::StreamVersion::kV1);
  EXPECT_EQ(s.plans[0].workload(3)->stream_version(), workloads::StreamVersion::kV1);
}

TEST(ScenarioFile, UnknownMonitorFailsAtFactoryConstruction) {
  const Scenario s =
      parse_scenario("[scheduler]\nkind = ks4xen\nmonitor = crystal\n[vm a]\napp = gcc\n");
  EXPECT_THROW(s.spec.scheduler(), std::logic_error);
}

TEST(ScenarioFile, ChurnSectionBuildsAPlan) {
  const Scenario s = parse_scenario(
      "[churn]\n"
      "trace = diurnal\n"
      "rate = 0.1\n"
      "mean_lifetime = 30\n"
      "horizon = 90\n"
      "period = 60\n"
      "amplitude = 0.5\n"
      "seed = 9\n"
      "apps = gcc, micro:c2dis\n"
      "vcpus = 1\n"
      "max_tenants = 3\n"
      "defer_queue = 2\n"
      "llc_cap = 12\n"
      "loop = true\n");
  ASSERT_NE(s.spec.churn, nullptr);
  EXPECT_TRUE(s.plans.empty());  // churn-only scenarios need no [vm]
  const ChurnPlan& plan = *s.spec.churn;
  EXPECT_EQ(plan.trace.kind, ChurnTraceConfig::Kind::kDiurnal);
  EXPECT_DOUBLE_EQ(plan.trace.arrival_rate, 0.1);
  EXPECT_EQ(plan.trace.horizon_ticks, 90);
  EXPECT_EQ(plan.trace.seed, 9u);
  ASSERT_EQ(plan.apps.size(), 2u);
  EXPECT_EQ(plan.app_ids[1], "micro:c2dis");
  EXPECT_EQ(plan.max_tenants, 3);
  EXPECT_EQ(plan.defer_queue, 2);
  EXPECT_DOUBLE_EQ(plan.tenant_config.llc_cap, 12.0);
  EXPECT_TRUE(plan.tenant_config.loop_workload);
  // The plan is runnable end to end (smoke; short window).
  RunSpec spec = s.spec;
  spec.warmup_ticks = 2;
  spec.measure_ticks = 6;
  const RunOutcome outcome = run_scenario(spec, s.plans);
  EXPECT_EQ(outcome.measured_ticks, 6);
}

TEST(ScenarioFile, ChurnTraceFileReplays) {
  const std::string path = ::testing::TempDir() + "/kyoto_churn_trace.txt";
  {
    std::ofstream out(path);
    out << "# two tenants\n0 5\n3 0\n";
  }
  const Scenario s = parse_scenario("[churn]\ntrace = file:" + path +
                                    "\napps = gcc\n[vm a]\napp = mcf\ncores = 0\n");
  ASSERT_NE(s.spec.churn, nullptr);
  ASSERT_EQ(s.spec.churn->explicit_trace.size(), 2u);
  EXPECT_EQ(s.spec.churn->explicit_trace[0], (ChurnEvent{0, 5}));
  std::remove(path.c_str());
}

TEST(ScenarioFile, ChurnRejectsBadInput) {
  EXPECT_THROW(parse_scenario("[churn]\ntrace = lunar\napps = gcc\n"), std::logic_error);
  EXPECT_THROW(parse_scenario("[churn]\nrate = 0.1\n"), std::logic_error);  // no apps
  EXPECT_THROW(parse_scenario("[churn]\napps = nosuchapp\n"), std::logic_error);
  EXPECT_THROW(parse_scenario(""), std::logic_error);  // still no [vm] and no [churn]
}

TEST(ScenarioFile, LoadFromDisk) {
  const std::string path = ::testing::TempDir() + "/kyoto_scenario_test.kyoto";
  {
    std::ofstream out(path);
    out << kBasic;
  }
  const Scenario s = load_scenario_file(path);
  EXPECT_EQ(s.plans.size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW(load_scenario_file(path), std::logic_error);
}

}  // namespace
}  // namespace kyoto::sim
