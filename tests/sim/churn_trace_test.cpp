// Churn traces: golden-pinned event streams and distribution gates.
//
// The FNV fingerprints pin the exact (config, seed) -> event-stream
// mapping: any change to the generator's draw order, the Bernoulli
// thresholding, the lifetime law or the text format shows up as a
// fingerprint mismatch and must be treated as a breaking format
// change.  The chi-square gates pin the *distributions*: geometric
// inter-arrivals (the discrete exponential), geometric lifetimes, and
// the diurnal phase mass following the triangle wave.
#include "sim/churn_trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace kyoto::sim {
namespace {

ChurnTraceConfig poisson_config(std::uint64_t seed) {
  ChurnTraceConfig c;
  c.kind = ChurnTraceConfig::Kind::kPoisson;
  c.arrival_rate = 0.05;
  c.mean_lifetime_ticks = 60.0;
  c.horizon_ticks = 600;
  c.seed = seed;
  return c;
}

ChurnTraceConfig diurnal_config(std::uint64_t seed) {
  ChurnTraceConfig c = poisson_config(seed);
  c.kind = ChurnTraceConfig::Kind::kDiurnal;
  c.period_ticks = 200;
  c.amplitude = 0.8;
  return c;
}

ChurnTraceConfig bursty_config(std::uint64_t seed) {
  ChurnTraceConfig c = poisson_config(seed);
  c.kind = ChurnTraceConfig::Kind::kBursty;
  c.burst_rate = 0.005;
  c.burst_size = 8;
  return c;
}

/// One-sample chi-square statistic per degree of freedom: observed
/// counts vs expected probabilities (bins with expected count < 5 are
/// pooled into the tail).  ~1 when the law holds; 1.5 is a generous
/// gate at these sample sizes (same style as compiled_stream_test).
double chi_square_per_dof(const std::vector<double>& observed,
                          const std::vector<double>& expected) {
  EXPECT_EQ(observed.size(), expected.size());
  double stat = 0.0;
  std::uint64_t dof = 0;
  double pooled_obs = 0.0, pooled_exp = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] < 5.0) {
      pooled_obs += observed[i];
      pooled_exp += expected[i];
      continue;
    }
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
    ++dof;
  }
  if (pooled_exp >= 5.0) {
    const double d = pooled_obs - pooled_exp;
    stat += d * d / pooled_exp;
    ++dof;
  }
  return dof > 1 ? stat / static_cast<double>(dof - 1) : 0.0;
}

// --- determinism and the text format ---------------------------------

TEST(ChurnTrace, GenerationIsDeterministicPerSeed) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    EXPECT_EQ(generate_churn_trace(poisson_config(seed)),
              generate_churn_trace(poisson_config(seed)));
  }
  EXPECT_NE(generate_churn_trace(poisson_config(1)),
            generate_churn_trace(poisson_config(2)));
}

TEST(ChurnTrace, FormatParsesBackToTheSameTrace) {
  for (const auto& config : {poisson_config(3), diurnal_config(3), bursty_config(3)}) {
    const auto trace = generate_churn_trace(config);
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(parse_churn_trace(format_churn_trace(trace)), trace);
  }
}

TEST(ChurnTrace, ParserSkipsCommentsAndRejectsMalformedInput) {
  const auto trace = parse_churn_trace("# header\n\n  3 10\n5 0  # inline\n");
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0], (ChurnEvent{3, 10}));
  EXPECT_EQ(trace[1], (ChurnEvent{5, 0}));

  EXPECT_THROW(parse_churn_trace("3\n"), std::runtime_error);
  EXPECT_THROW(parse_churn_trace("3 10 99\n"), std::runtime_error);
  EXPECT_THROW(parse_churn_trace("3 -1\n"), std::runtime_error);
  EXPECT_THROW(parse_churn_trace("5 1\n3 1\n"), std::runtime_error);
}

// --- golden pins ------------------------------------------------------

// Pinned FNV-1a fingerprints of the canonical text form, one per
// (generator, seed).  A mismatch means the event-stream format
// changed: update deliberately, with a CHANGES.md note.
TEST(ChurnTrace, GoldenFingerprintsPoisson) {
  EXPECT_EQ(churn_trace_fingerprint(generate_churn_trace(poisson_config(1))),
            0x053885dc4182f9aaull);
  EXPECT_EQ(churn_trace_fingerprint(generate_churn_trace(poisson_config(2))),
            0x90cb53856232a4f4ull);
  EXPECT_EQ(churn_trace_fingerprint(generate_churn_trace(poisson_config(3))),
            0xc353ab9f475aa606ull);
}

TEST(ChurnTrace, GoldenFingerprintsDiurnal) {
  EXPECT_EQ(churn_trace_fingerprint(generate_churn_trace(diurnal_config(1))),
            0x55379d9c334309e5ull);
  EXPECT_EQ(churn_trace_fingerprint(generate_churn_trace(diurnal_config(2))),
            0x7fb4451ebeefd98eull);
}

TEST(ChurnTrace, GoldenFingerprintsBursty) {
  EXPECT_EQ(churn_trace_fingerprint(generate_churn_trace(bursty_config(1))),
            0x9b6546e771deb43aull);
  EXPECT_EQ(churn_trace_fingerprint(generate_churn_trace(bursty_config(2))),
            0x1cabfad18af053b0ull);
}

// --- distribution gates ----------------------------------------------

TEST(ChurnTrace, PoissonInterArrivalsAreGeometric) {
  ChurnTraceConfig config = poisson_config(11);
  config.horizon_ticks = 400'000;
  config.mean_lifetime_ticks = 0.0;  // lifetimes off: isolate arrivals
  const auto trace = generate_churn_trace(config);
  ASSERT_GT(trace.size(), 10'000u);

  // Gap distribution for a per-tick Bernoulli process: P(G = g) =
  // (1-p)^(g-1) p on {1, 2, ...} — the discrete exponential.
  constexpr int kBins = 64;  // gaps 1..63 individually, tail pooled
  std::vector<double> observed(kBins + 1, 0.0);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const auto gap = trace[i].tick - trace[i - 1].tick;
    if (gap == 0) continue;  // same-tick arrivals carry no gap info
    observed[gap < kBins ? static_cast<std::size_t>(gap) : kBins] += 1.0;
  }
  double samples = 0.0;
  for (const double o : observed) samples += o;
  const double p = config.arrival_rate;
  std::vector<double> expected(kBins + 1, 0.0);
  double tail = 1.0;
  for (int g = 1; g < kBins; ++g) {
    const double prob = std::pow(1.0 - p, g - 1) * p;
    expected[static_cast<std::size_t>(g)] = samples * prob;
    tail -= prob;
  }
  expected[kBins] = samples * tail;
  EXPECT_LT(chi_square_per_dof(observed, expected), 1.5);
}

TEST(ChurnTrace, LifetimesAreGeometricWithTheConfiguredMean) {
  ChurnTraceConfig config = poisson_config(13);
  config.horizon_ticks = 400'000;
  config.mean_lifetime_ticks = 40.0;
  const auto trace = generate_churn_trace(config);
  ASSERT_GT(trace.size(), 10'000u);

  constexpr int kBins = 200;
  std::vector<double> observed(kBins + 1, 0.0);
  double sum = 0.0;
  for (const ChurnEvent& e : trace) {
    observed[e.lifetime < kBins ? static_cast<std::size_t>(e.lifetime) : kBins] += 1.0;
    sum += static_cast<double>(e.lifetime);
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(sum / n, config.mean_lifetime_ticks, config.mean_lifetime_ticks * 0.05);

  const double q = 1.0 / config.mean_lifetime_ticks;
  std::vector<double> expected(kBins + 1, 0.0);
  double tail = 1.0;
  for (int l = 1; l < kBins; ++l) {
    const double prob = std::pow(1.0 - q, l - 1) * q;
    expected[static_cast<std::size_t>(l)] = n * prob;
    tail -= prob;
  }
  expected[kBins] = n * tail;
  EXPECT_LT(chi_square_per_dof(observed, expected), 1.5);
}

TEST(ChurnTrace, DiurnalPhaseMassFollowsTheTriangleWave) {
  ChurnTraceConfig config = diurnal_config(17);
  config.horizon_ticks = 400'000;
  config.mean_lifetime_ticks = 0.0;
  const auto trace = generate_churn_trace(config);
  ASSERT_GT(trace.size(), 10'000u);

  // Bucket arrivals by phase; expected mass per bucket is the exact
  // sum of the per-tick rates the generator used.
  constexpr int kBins = 8;
  const Tick period = config.period_ticks;
  const Tick per_bin = period / kBins;
  std::vector<double> observed(kBins, 0.0);
  for (const ChurnEvent& e : trace) {
    observed[static_cast<std::size_t>((e.tick % period) / per_bin)] += 1.0;
  }
  std::vector<double> expected(kBins, 0.0);
  for (Tick t = 0; t < config.horizon_ticks; ++t) {
    const double x = static_cast<double>(t % period) / static_cast<double>(period);
    const double d = x < 0.5 ? 0.5 - x : x - 0.5;
    const double tri = 1.0 - 4.0 * d;
    expected[static_cast<std::size_t>((t % period) / per_bin)] +=
        config.arrival_rate * (1.0 + config.amplitude * tri);
  }
  EXPECT_LT(chi_square_per_dof(observed, expected), 1.5);

  // And the wave is actually visible: noon buckets beat midnight.
  const double night = observed[0] + observed[kBins - 1];
  const double noon = observed[kBins / 2 - 1] + observed[kBins / 2];
  EXPECT_GT(noon, night * 2.0);
}

TEST(ChurnTrace, BurstyTraceContainsFlashCrowds) {
  ChurnTraceConfig config = bursty_config(19);
  config.horizon_ticks = 50'000;
  const auto trace = generate_churn_trace(config);

  // Count ticks with >= burst_size same-tick arrivals.
  std::int64_t bursts = 0;
  std::size_t i = 0;
  while (i < trace.size()) {
    std::size_t j = i;
    while (j < trace.size() && trace[j].tick == trace[i].tick) ++j;
    if (j - i >= static_cast<std::size_t>(config.burst_size)) ++bursts;
    i = j;
  }
  // Expected epochs = horizon * burst_rate = 250; allow +-40%.
  const double expected =
      static_cast<double>(config.horizon_ticks) * config.burst_rate;
  EXPECT_GT(static_cast<double>(bursts), expected * 0.6);
  EXPECT_LT(static_cast<double>(bursts), expected * 1.4);
}

}  // namespace
}  // namespace kyoto::sim
