// FarmRunner acceptance gate: process-farm execution must be
// *byte-identical* to the in-process SweepRunner — same RunOutcomes,
// same submission order — at every worker count, through the in-process
// degradation path, and across a checkpoint interrupt/resume split.
// Exact equality by design; never weaken to tolerances.
// (Fault-injection coverage lives in farm_fault_test.cpp.)
#include "sim/farm_runner.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/scenario_file.hpp"
#include "sim/sweep_runner.hpp"

namespace kyoto::sim {
namespace {

/// The worker binary under test: ctest exports KYOTO_SWEEP_WORKER
/// (see CMakeLists.txt); a sibling-path fallback keeps manual runs
/// from the build directory working.
std::string worker_path() {
  if (const char* env = std::getenv("KYOTO_SWEEP_WORKER"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "./sweep_worker";
}

bool worker_available() { return ::access(worker_path().c_str(), X_OK) == 0; }

/// Smallest interesting scenario: two VMs contending on a 1x2 machine
/// under KS4Xen, a handful of ticks.  Parameterized so a batch of
/// them exercises distinct simulations.
std::string tiny_scenario(const std::string& app, int measure_ticks, int seed) {
  return
      "[machine]\n"
      "topology = 1x2\n"
      "scale = 64\n"
      "\n"
      "[scheduler]\n"
      "kind = ks4xen\n"
      "monitor = direct\n"
      "punish = block\n"
      "\n"
      "[vm tenant]\n"
      "app = " + app + "\n"
      "cores = 0\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[vm noisy]\n"
      "app = lbm\n"
      "cores = 1\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[run]\n"
      "warmup_ticks = 2\n"
      "measure_ticks = " + std::to_string(measure_ticks) + "\n"
      "seed = " + std::to_string(seed) + "\n";
}

std::vector<std::pair<std::string, std::string>> batch_jobs() {
  std::vector<std::pair<std::string, std::string>> jobs;
  int seed = 1;
  for (const char* app : {"gcc", "mcf", "omnetpp"}) {
    for (const int ticks : {5, 7}) {
      jobs.emplace_back(std::string(app) + "/" + std::to_string(ticks),
                        tiny_scenario(app, ticks, seed++));
    }
  }
  return jobs;
}

/// The oracle: the same jobs through the in-process SweepRunner.
std::vector<RunOutcome> sweep_reference(
    const std::vector<std::pair<std::string, std::string>>& jobs) {
  SweepRunner sweep(2);
  for (const auto& [label, text] : jobs) {
    const Scenario scenario = parse_scenario(text);
    sweep.add(scenario.spec, scenario.plans, label);
  }
  return sweep.run();
}

std::string temp_path(const char* name) {
  return testing::TempDir() + "farm_runner_" + name + "_" + std::to_string(::getpid()) + ".ckpt";
}

TEST(FarmRunner, MatchesSweepRunnerAtEveryWorkerCount) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker not found at " << worker_path();
  const auto jobs = batch_jobs();
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  for (const int workers : {1, 2, 4}) {
    FarmOptions options;
    options.workers = workers;
    options.worker_path = worker_path();
    FarmRunner farm(options);
    for (const auto& [label, text] : jobs) farm.add(text, label);
    const std::vector<RunOutcome> outcomes = farm.run();
    EXPECT_EQ(outcomes, expected) << "workers=" << workers;
    EXPECT_FALSE(farm.ran_in_process()) << "workers=" << workers;
    EXPECT_EQ(farm.jobs_executed(), static_cast<int>(jobs.size()));
    EXPECT_EQ(farm.worker_respawns(), 0);
    EXPECT_EQ(farm.job_retries(), 0);
  }
}

TEST(FarmRunner, InProcessFallbackMatches) {
  // An empty worker_path is the explicit "no distribution" form; the
  // outcomes must be the same bytes.
  const auto jobs = batch_jobs();
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  FarmRunner farm(FarmOptions{});
  for (const auto& [label, text] : jobs) farm.add(text, label);
  EXPECT_EQ(farm.pending(), jobs.size());
  const std::vector<RunOutcome> outcomes = farm.run();
  EXPECT_EQ(outcomes, expected);
  EXPECT_TRUE(farm.ran_in_process());
  EXPECT_EQ(farm.pending(), 0u);  // batch cleared on success
}

TEST(FarmRunner, MissingWorkerBinaryDegradesGracefully) {
  const auto jobs = batch_jobs();
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  FarmOptions options;
  options.workers = 3;
  options.worker_path = "/nonexistent/path/to/sweep_worker";
  FarmRunner farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const std::vector<RunOutcome> outcomes = farm.run();
  EXPECT_EQ(outcomes, expected);
  EXPECT_TRUE(farm.ran_in_process());
  EXPECT_FALSE(farm.degrade_reason().empty());
}

TEST(FarmRunner, AddRejectsMalformedScenarios) {
  FarmRunner farm(FarmOptions{});
  EXPECT_THROW(farm.add("this is not a scenario"), std::exception);
  EXPECT_THROW(farm.add("[machine]\ntopology = 1x2\n"), std::exception);  // no [vm]
  EXPECT_EQ(farm.pending(), 0u);
}

class FarmCheckpoint : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!ckpt_.empty()) {
      std::remove(ckpt_.c_str());
      std::remove((ckpt_ + ".tmp").c_str());
    }
  }

  std::string ckpt_;
};

TEST_F(FarmCheckpoint, InterruptAndResumeIsExact) {
  ckpt_ = temp_path("resume");
  const auto jobs = batch_jobs();
  const int total = static_cast<int>(jobs.size());
  const std::vector<RunOutcome> expected = sweep_reference(jobs);

  // Phase 1: interrupt after K of N completed jobs (the test knob
  // flushes a checkpoint before throwing, like a SIGTERM handler
  // would).  In-process execution keeps completion order — and thus
  // K's identity — deterministic.
  constexpr int kInterruptAfter = 3;
  FarmOptions interrupted;
  interrupted.checkpoint_path = ckpt_;
  interrupted.checkpoint_every = 1;
  interrupted.abort_after_completed = kInterruptAfter;
  {
    FarmRunner farm(interrupted);
    for (const auto& [label, text] : jobs) farm.add(text, label);
    try {
      farm.run();
      FAIL() << "expected FarmInterrupted";
    } catch (const FarmInterrupted& e) {
      EXPECT_EQ(e.completed(), kInterruptAfter);
    }
  }

  // Phase 2: a fresh runner with the same batch resumes — exactly
  // N - K jobs simulate, the rest restore, and the merged result is
  // the uninterrupted result, byte for byte.
  FarmOptions resumed;
  resumed.checkpoint_path = ckpt_;
  FarmRunner farm(resumed);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const std::vector<RunOutcome> outcomes = farm.run();
  EXPECT_EQ(outcomes, expected);
  EXPECT_EQ(farm.jobs_restored(), kInterruptAfter);
  EXPECT_EQ(farm.jobs_executed(), total - kInterruptAfter);

  // Phase 3: the post-success checkpoint is complete — a third run
  // restores everything and simulates nothing.
  FarmRunner again(resumed);
  for (const auto& [label, text] : jobs) again.add(text, label);
  EXPECT_EQ(again.run(), expected);
  EXPECT_EQ(again.jobs_restored(), total);
  EXPECT_EQ(again.jobs_executed(), 0);
}

TEST_F(FarmCheckpoint, WorkerResumeIsExact) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker not found at " << worker_path();
  ckpt_ = temp_path("worker_resume");
  const auto jobs = batch_jobs();
  const std::vector<RunOutcome> expected = sweep_reference(jobs);

  FarmOptions interrupted;
  interrupted.workers = 2;
  interrupted.worker_path = worker_path();
  interrupted.checkpoint_path = ckpt_;
  interrupted.checkpoint_every = 1;
  interrupted.abort_after_completed = 2;
  {
    FarmRunner farm(interrupted);
    for (const auto& [label, text] : jobs) farm.add(text, label);
    EXPECT_THROW(farm.run(), FarmInterrupted);
  }

  FarmOptions resumed = interrupted;
  resumed.abort_after_completed = -1;
  FarmRunner farm(resumed);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  EXPECT_EQ(farm.run(), expected);
  // With 2 workers the interrupt point is nondeterministic in *which*
  // jobs finished, but the split must still account for every job
  // exactly once.
  EXPECT_GE(farm.jobs_restored(), 2);
  EXPECT_EQ(farm.jobs_restored() + farm.jobs_executed(), static_cast<int>(jobs.size()));
}

TEST_F(FarmCheckpoint, CorruptCheckpointMeansCleanRestart) {
  ckpt_ = temp_path("corrupt");
  const auto jobs = batch_jobs();
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  {
    std::ofstream out(ckpt_, std::ios::binary);
    out << "KYFM this was a checkpoint once, now it is soup";
  }
  FarmOptions options;
  options.checkpoint_path = ckpt_;
  FarmRunner farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const std::vector<RunOutcome> outcomes = farm.run();
  EXPECT_EQ(outcomes, expected);
  EXPECT_EQ(farm.jobs_restored(), 0);
  EXPECT_EQ(farm.jobs_executed(), static_cast<int>(jobs.size()));
  EXPECT_NE(farm.degrade_reason().find("checkpoint ignored"), std::string::npos)
      << farm.degrade_reason();
}

TEST_F(FarmCheckpoint, TruncatedCheckpointMeansCleanRestart) {
  ckpt_ = temp_path("truncated");
  const auto jobs = batch_jobs();
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  // Produce a complete, valid checkpoint...
  FarmOptions options;
  options.checkpoint_path = ckpt_;
  {
    FarmRunner farm(options);
    for (const auto& [label, text] : jobs) farm.add(text, label);
    farm.run();
  }
  // ...then chop its tail, as a half-copied file would look.
  {
    std::ifstream in(ckpt_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 10u);
    std::ofstream out(ckpt_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 7));
  }
  FarmRunner farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  EXPECT_EQ(farm.run(), expected);
  EXPECT_EQ(farm.jobs_restored(), 0);
  EXPECT_NE(farm.degrade_reason().find("checkpoint ignored"), std::string::npos);
}

TEST_F(FarmCheckpoint, ForeignBatchCheckpointIsIgnored) {
  ckpt_ = temp_path("foreign");
  const auto jobs = batch_jobs();
  // Checkpoint a different batch under the same path.
  {
    FarmOptions options;
    options.checkpoint_path = ckpt_;
    FarmRunner farm(options);
    farm.add(tiny_scenario("hmmer", 4, 99), "other-batch");
    farm.run();
  }
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  FarmOptions options;
  options.checkpoint_path = ckpt_;
  FarmRunner farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  EXPECT_EQ(farm.run(), expected);
  EXPECT_EQ(farm.jobs_restored(), 0);  // fingerprint mismatch: nothing restored
  EXPECT_NE(farm.degrade_reason().find("different job batch"), std::string::npos);
}

}  // namespace
}  // namespace kyoto::sim
