#include "sim/placement.hpp"

#include <gtest/gtest.h>

namespace kyoto::sim {
namespace {

VmProfile vm(const char* name, double pollution, double sensitivity, int vcpus = 1) {
  return VmProfile{name, pollution, sensitivity, vcpus};
}

TEST(Placement, RejectsDegenerateInputs) {
  EXPECT_THROW(PlacementProblem(0, 4), std::logic_error);
  PlacementProblem p(2, 4);
  EXPECT_THROW(p.add_vm(vm("too-wide", 1, 1, 5)), std::logic_error);
  EXPECT_THROW(p.add_vm(vm("no-vcpus", 1, 1, 0)), std::logic_error);
}

TEST(Placement, InterferenceCountsCrossPairsOnly) {
  PlacementProblem p(2, 4);
  p.add_vm(vm("polluter", 100.0, 0.0));
  p.add_vm(vm("victim", 0.0, 1.0));
  // Same socket: victim suffers 1.0 * 100.
  EXPECT_DOUBLE_EQ(p.interference({0, 0}), 100.0);
  // Separate sockets: nothing.
  EXPECT_DOUBLE_EQ(p.interference({0, 1}), 0.0);
  // A VM does not interfere with itself.
  PlacementProblem solo(1, 4);
  solo.add_vm(vm("self", 50.0, 1.0));
  EXPECT_DOUBLE_EQ(solo.interference({0}), 0.0);
}

TEST(Placement, FeasibilityRespectsCoreCapacity) {
  PlacementProblem p(2, 2);
  p.add_vm(vm("a", 1, 1, 2));
  p.add_vm(vm("b", 1, 1, 1));
  EXPECT_TRUE(p.feasible({0, 1}));
  EXPECT_FALSE(p.feasible({0, 0}));   // 3 vCPUs on a 2-core socket
  EXPECT_FALSE(p.feasible({0, 5}));   // socket out of range
  EXPECT_FALSE(p.feasible({0}));      // size mismatch
}

TEST(Placement, FirstFitPacksInOrder) {
  PlacementProblem p(2, 2);
  p.add_vm(vm("a", 1, 1));
  p.add_vm(vm("b", 1, 1));
  p.add_vm(vm("c", 1, 1));
  const auto placement = p.first_fit();
  EXPECT_EQ(placement.socket_of, (std::vector<int>{0, 0, 1}));
}

TEST(Placement, GreedySeparatesPolluterFromVictim) {
  PlacementProblem p(2, 4);
  p.add_vm(vm("lbm", 700.0, 0.1));
  p.add_vm(vm("gcc", 5.0, 3.0));
  p.add_vm(vm("povray", 0.1, 0.1));
  p.add_vm(vm("hmmer", 0.5, 0.1));
  const auto placement = p.greedy();
  EXPECT_TRUE(p.feasible(placement.socket_of));
  EXPECT_NE(placement.socket_of[0], placement.socket_of[1])
      << "greedy should not colocate the streamer with the sensitive VM";
  // And it beats naive first-fit, which packs lbm+gcc together.
  EXPECT_LT(placement.interference, p.first_fit().interference);
}

TEST(Placement, GreedyHasAGapAndLocalSearchClosesIt) {
  // This instance makes plain greedy land in a local trap — the
  // NP-hardness the paper cites when dismissing placement-only
  // solutions.  One round of move/swap local search recovers.
  PlacementProblem p(2, 3);
  p.add_vm(vm("a", 90, 1));
  p.add_vm(vm("b", 70, 2));
  p.add_vm(vm("c", 5, 9));
  p.add_vm(vm("d", 3, 8));
  p.add_vm(vm("e", 40, 1));
  const auto greedy = p.greedy();
  const auto refined = p.local_search();
  const auto best = p.exhaustive();
  EXPECT_TRUE(p.feasible(greedy.socket_of));
  EXPECT_TRUE(p.feasible(refined.socket_of));
  // No heuristic beats the optimum...
  EXPECT_GE(greedy.interference, best.interference - 1e-9);
  EXPECT_GE(refined.interference, best.interference - 1e-9);
  // ...local search is at least as good as greedy and near-optimal here.
  EXPECT_LE(refined.interference, greedy.interference + 1e-9);
  EXPECT_LE(refined.interference, best.interference * 1.2 + 1e-9);
}

TEST(Placement, ExhaustiveGuardedAgainstBlowup) {
  PlacementProblem p(2, 16);
  for (int i = 0; i < 13; ++i) p.add_vm(vm("x", 1, 1));
  EXPECT_THROW(p.exhaustive(), std::logic_error);
}

TEST(Placement, ThrowsWhenNothingFits) {
  PlacementProblem p(1, 1);
  p.add_vm(vm("a", 1, 1));
  p.add_vm(vm("b", 1, 1));
  EXPECT_THROW(p.first_fit(), std::logic_error);
  EXPECT_THROW(p.greedy(), std::logic_error);
}

TEST(Placement, GreedyIsDeterministic) {
  PlacementProblem p(2, 4);
  for (int i = 0; i < 6; ++i) {
    p.add_vm(vm(("vm" + std::to_string(i)).c_str(), 10.0 * i, 6.0 - i));
  }
  const auto a = p.greedy();
  const auto b = p.greedy();
  EXPECT_EQ(a.socket_of, b.socket_of);
  EXPECT_DOUBLE_EQ(a.interference, b.interference);
}

}  // namespace
}  // namespace kyoto::sim
