#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "kyoto/ks4xen.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::sim {
namespace {

TEST(DegradationPct, Basics) {
  EXPECT_DOUBLE_EQ(degradation_pct(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(degradation_pct(1.0, 0.5), 50.0);
  EXPECT_NEAR(degradation_pct(2.0, 2.2), -10.0, 1e-9);  // speedups are negative
  EXPECT_DOUBLE_EQ(degradation_pct(0.0, 1.0), 0.0);    // guarded
}

TEST(RunScenario, CollectsPerVmMetrics) {
  RunSpec spec = test::quick_spec(3, 12);
  VmPlan a;
  a.config.name = "gcc";
  a.config.loop_workload = true;
  a.workload = test::app_factory("gcc", spec.machine);
  a.pinned_cores = {0};
  VmPlan b;
  b.config.name = "lbm";
  b.config.loop_workload = true;
  b.workload = test::app_factory("lbm", spec.machine);
  b.pinned_cores = {1};

  const auto outcome = run_scenario(spec, {a, b});
  ASSERT_EQ(outcome.vms.size(), 2u);
  EXPECT_EQ(outcome.vms[0].name, "gcc");
  EXPECT_GT(outcome.vms[0].instructions, 0u);
  EXPECT_GT(outcome.vms[0].ipc, 0.0);
  EXPECT_GT(outcome.vms[1].llc_misses, 0u);
  EXPECT_GT(outcome.vms[1].llc_cap_act, 0.0);
  EXPECT_GT(outcome.vms[0].throughput, 0.0);
  EXPECT_EQ(outcome.measured_ticks, 12);
}

TEST(RunScenario, ValidatesPlans) {
  RunSpec spec = test::quick_spec();
  VmPlan bad;
  bad.config.name = "x";
  bad.pinned_cores = {};
  EXPECT_THROW(run_scenario(spec, {bad}), std::logic_error);
  VmPlan no_factory;
  no_factory.config.name = "y";
  EXPECT_THROW(run_scenario(spec, {no_factory}), std::logic_error);
}

TEST(RunSolo, MeasuresSingleVm) {
  RunSpec spec = test::quick_spec(3, 12);
  const auto m = run_solo(spec, test::app_factory("hmmer", spec.machine), "hmmer");
  EXPECT_EQ(m.name, "hmmer");
  EXPECT_GT(m.ipc, 0.3);            // ILC-resident: high IPC
  EXPECT_LT(m.llc_cap_act, 10.0);   // nearly no LLC pollution
}

TEST(RunScenario, KyotoCountersExposed) {
  RunSpec spec = test::quick_spec(3, 30);
  spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
  VmPlan dis;
  dis.config.name = "lbm";
  dis.config.llc_cap = 1.0;  // tiny permit: punished immediately
  dis.config.loop_workload = true;
  dis.workload = test::app_factory("lbm", spec.machine);
  dis.pinned_cores = {0};
  const auto outcome = run_scenario(spec, {dis});
  EXPECT_GT(outcome.vms[0].punished_ticks, 10);
}

TEST(RunToCompletion, ReturnsExecutionTime) {
  RunSpec spec = test::quick_spec();
  VmPlan plan;
  plan.config.name = "hmmer";
  plan.workload = test::app_factory("hmmer", spec.machine);
  plan.pinned_cores = {0};
  const double ms = run_to_completion_ms(spec, {plan}, 0, 20'000);
  EXPECT_GT(ms, 0.0);
  // hmmer: ~6M instructions at IPC ~0.5-1 on a 43.75 cycles/us core.
  EXPECT_LT(ms, 2'000.0);
}

TEST(RunToCompletion, TimesOutGracefully) {
  RunSpec spec = test::quick_spec();
  VmPlan plan;
  plan.config.name = "milc";  // far too long for 5 ticks
  plan.workload = test::app_factory("milc", spec.machine);
  plan.pinned_cores = {0};
  EXPECT_LT(run_to_completion_ms(spec, {plan}, 0, 5), 0.0);
}

TEST(RunToCompletion, EndlessWorkloadRejected) {
  RunSpec spec = test::quick_spec();
  VmPlan plan;
  plan.config.name = "micro";
  const auto mem = spec.machine.mem;
  plan.workload = [mem](std::uint64_t seed) {
    return workloads::micro_representative(workloads::MicroClass::kC2, mem, seed);
  };
  plan.pinned_cores = {0};
  EXPECT_THROW(run_to_completion_ms(spec, {plan}, 0, 10), std::logic_error);
}

TEST(TimelineSampler, RecordsPerTickSeries) {
  auto spec = test::quick_spec();
  auto hv = build_scenario(spec, [&] {
    VmPlan plan;
    plan.config.name = "lbm";
    plan.config.loop_workload = true;
    plan.workload = test::app_factory("lbm", spec.machine);
    plan.pinned_cores = {0};
    return std::vector<VmPlan>{plan};
  }());
  TimelineSampler sampler(*hv, *hv->vms()[0]);
  hv->run_ticks(10);
  ASSERT_EQ(sampler.samples().size(), 10u);
  for (Tick t = 0; t < 10; ++t) {
    const auto& s = sampler.samples()[static_cast<std::size_t>(t)];
    EXPECT_EQ(s.tick, t);
    EXPECT_TRUE(s.ran);
    EXPECT_GT(s.cycles, 0u);
  }
  // lbm misses continuously (working set >> LLC).
  EXPECT_GT(sampler.samples()[5].llc_misses, 100u);
}

TEST(TimelineSampler, TracksQuotaWithController) {
  auto spec = test::quick_spec();
  spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
  VmPlan plan;
  plan.config.name = "lbm";
  plan.config.llc_cap = 50.0;
  plan.config.loop_workload = true;
  plan.workload = test::app_factory("lbm", spec.machine);
  plan.pinned_cores = {0};
  auto hv = build_scenario(spec, {plan});
  auto& ks = static_cast<core::Ks4Xen&>(hv->scheduler());
  TimelineSampler sampler(*hv, *hv->vms()[0], &ks.kyoto());
  hv->run_ticks(30);
  bool saw_negative_quota = false;
  bool saw_punished = false;
  for (const auto& s : sampler.samples()) {
    saw_negative_quota |= s.quota < 0.0;
    saw_punished |= s.punished;
  }
  EXPECT_TRUE(saw_negative_quota);
  EXPECT_TRUE(saw_punished);
}

}  // namespace
}  // namespace kyoto::sim
