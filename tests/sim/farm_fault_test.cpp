// Farm fault-tolerance gate: every injected failure mode must end in
// one of exactly two states — the batch retries to the byte-identical
// result, or it fails with a diagnosable error naming the job.  Never
// a hang, never a silently missing or corrupted outcome.
//
// Faults are injected through sweep_worker's --fault-* flags (see
// examples/sweep_worker.cpp): "after N" faults fire once per worker
// process (its Nth handled job), so a respawned worker makes
// progress — the transient-fault model; "on-label" faults follow the
// job to every worker — the poisoned-job model, which must exhaust
// its bounded retries and fail the whole batch diagnosably.
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "sim/farm_runner.hpp"
#include "sim/scenario_file.hpp"
#include "sim/sweep_runner.hpp"

namespace kyoto::sim {
namespace {

std::string worker_path() {
  if (const char* env = std::getenv("KYOTO_SWEEP_WORKER"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "./sweep_worker";
}

bool worker_available() { return ::access(worker_path().c_str(), X_OK) == 0; }

std::string tiny_scenario(const std::string& app, int measure_ticks, int seed) {
  return
      "[machine]\n"
      "topology = 1x2\n"
      "scale = 64\n"
      "\n"
      "[scheduler]\n"
      "kind = ks4xen\n"
      "monitor = direct\n"
      "punish = block\n"
      "\n"
      "[vm tenant]\n"
      "app = " + app + "\n"
      "cores = 0\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[vm noisy]\n"
      "app = lbm\n"
      "cores = 1\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[run]\n"
      "warmup_ticks = 2\n"
      "measure_ticks = " + std::to_string(measure_ticks) + "\n"
      "seed = " + std::to_string(seed) + "\n";
}

std::vector<std::pair<std::string, std::string>> small_batch() {
  std::vector<std::pair<std::string, std::string>> jobs;
  int seed = 10;
  for (const char* app : {"gcc", "mcf", "gcc", "mcf", "gcc", "mcf"}) {
    jobs.emplace_back("job" + std::to_string(seed), tiny_scenario(app, 5, seed));
    ++seed;
  }
  return jobs;
}

std::vector<RunOutcome> sweep_reference(
    const std::vector<std::pair<std::string, std::string>>& jobs) {
  SweepRunner sweep(2);
  for (const auto& [label, text] : jobs) {
    const Scenario scenario = parse_scenario(text);
    sweep.add(scenario.spec, scenario.plans, label);
  }
  return sweep.run();
}

class FarmFault : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!worker_available()) GTEST_SKIP() << "sweep_worker not found at " << worker_path();
  }

  FarmOptions options(std::vector<std::string> fault_args) {
    FarmOptions o;
    o.workers = 2;
    o.worker_path = worker_path();
    o.worker_args = std::move(fault_args);
    return o;
  }

  std::vector<RunOutcome> run_jobs(FarmRunner& farm,
                                   const std::vector<std::pair<std::string, std::string>>& jobs) {
    for (const auto& [label, text] : jobs) farm.add(text, label);
    return farm.run();
  }
};

TEST_F(FarmFault, SigkillMidJobRetriesToIdenticalResult) {
  // Every worker process is SIGKILLed on its 2nd job, so each job
  // fails at most once and the batch converges through respawns.
  const auto jobs = small_batch();
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  FarmRunner farm(options({"--fault-kill-after", "2"}));
  const std::vector<RunOutcome> outcomes = run_jobs(farm, jobs);
  EXPECT_EQ(outcomes, expected);
  EXPECT_FALSE(farm.ran_in_process());
  EXPECT_GE(farm.worker_respawns(), 1);
  EXPECT_GE(farm.job_retries(), 1);
}

TEST_F(FarmFault, GarbageFramesAreDetectedAndRetried) {
  // A worker answering its 2nd job with non-protocol bytes is a
  // protocol violation: killed, respawned, job retried — and the
  // final outcomes are still the reference bytes.
  const auto jobs = small_batch();
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  FarmRunner farm(options({"--fault-garbage-after", "2"}));
  const std::vector<RunOutcome> outcomes = run_jobs(farm, jobs);
  EXPECT_EQ(outcomes, expected);
  EXPECT_GE(farm.worker_respawns(), 1);
  EXPECT_GE(farm.job_retries(), 1);
}

TEST_F(FarmFault, TransientHangTimesOutAndRetries) {
  // A hang is invisible to EOF detection; only the per-job timeout
  // catches it.  Short timeout + tiny jobs: a healthy job finishes in
  // well under a second, so 2s of silence means hung.
  auto jobs = small_batch();
  jobs.resize(4);
  const std::vector<RunOutcome> expected = sweep_reference(jobs);
  FarmOptions o = options({"--fault-hang-after", "2"});
  o.job_timeout_s = 2.0;
  FarmRunner farm(o);
  const std::vector<RunOutcome> outcomes = run_jobs(farm, jobs);
  EXPECT_EQ(outcomes, expected);
  EXPECT_GE(farm.worker_respawns(), 1);
  EXPECT_GE(farm.job_retries(), 1);
}

TEST_F(FarmFault, PoisonedJobExhaustsRetriesDiagnosably) {
  // The poisoned job kills every worker that touches it; after
  // max_retries + 1 attempts the batch must fail with an error that
  // names the job — the operator can find and drop it.
  auto jobs = small_batch();
  jobs[3].first = "poisoned-job";
  FarmOptions o = options({"--fault-kill-on-label", "poisoned-job"});
  o.max_retries = 1;
  FarmRunner farm(o);
  try {
    run_jobs(farm, jobs);
    FAIL() << "expected the poisoned job to fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("poisoned-job"), std::string::npos) << what;
    EXPECT_NE(what.find("attempt"), std::string::npos) << what;
  }
}

TEST_F(FarmFault, PoisonedHangExhaustsRetriesDiagnosably) {
  auto jobs = small_batch();
  jobs.resize(3);
  jobs[1].first = "poisoned-hang";
  FarmOptions o = options({"--fault-hang-on-label", "poisoned-hang"});
  o.max_retries = 1;
  o.job_timeout_s = 1.0;
  FarmRunner farm(o);
  try {
    run_jobs(farm, jobs);
    FAIL() << "expected the hanging job to fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("poisoned-hang"), std::string::npos) << what;
    EXPECT_NE(what.find("hung"), std::string::npos) << what;
  }
}

TEST_F(FarmFault, WorkerErrorFrameFailsBatchImmediately) {
  // An error frame is a *deterministic* failure (e.g. a scenario the
  // simulator rejects): retrying would fail identically, so the batch
  // fails at once, without burning retries.
  auto jobs = small_batch();
  jobs[2].first = "deterministic-failure";
  FarmRunner farm(options({"--fault-error-on-label", "deterministic-failure"}));
  try {
    run_jobs(farm, jobs);
    FAIL() << "expected the error frame to fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deterministic-failure"), std::string::npos) << what;
    EXPECT_NE(what.find("injected"), std::string::npos) << what;
  }
  EXPECT_EQ(farm.job_retries(), 0);
}

TEST_F(FarmFault, RealDeterministicFailureNamesTheScenarioProblem) {
  // Not injected: a scenario that parses but fails inside the
  // simulator (invalid cache geometry) must come back as the
  // simulator's own diagnostic, carried through the error frame.
  auto jobs = small_batch();
  jobs.resize(2);
  std::string bad = jobs[1].second;
  const auto pos = bad.find("scale = 64");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 10, "scale = 48");  // size % (line*ways) != 0
  jobs[1] = {"bad-geometry", bad};
  FarmRunner farm(options({}));
  try {
    run_jobs(farm, jobs);
    FAIL() << "expected the invalid geometry to fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad-geometry"), std::string::npos) << what;
    EXPECT_NE(what.find("cache size"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace kyoto::sim
