// Multi-host farm gate: the full fault drill.  A batch split across
// simulated hosts — killed workers, corrupt result files, hangs,
// garbage — must converge, via per-host budgets, quarantine/backoff
// and shard redistribution, to outcomes byte-identical to the
// in-process SweepRunner; when every host is out it must degrade to
// in-process execution, never hang or drop work.  Owner-aware
// checkpoints must let a resumed coordinator *re-collect* shards that
// finished while it was down instead of re-running them (the attempt
// counters prove which happened).
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/farm_codec.hpp"
#include "sim/host_farm.hpp"
#include "sim/scenario_file.hpp"
#include "sim/shard_splitter.hpp"
#include "sim/sweep_runner.hpp"

namespace kyoto::sim {
namespace {

std::string worker_path() {
  if (const char* env = std::getenv("KYOTO_SWEEP_WORKER"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "./sweep_worker";
}

bool worker_available() { return ::access(worker_path().c_str(), X_OK) == 0; }

std::string tiny_scenario(const std::string& app, int seed) {
  return
      "[machine]\n"
      "topology = 1x2\n"
      "scale = 64\n"
      "\n"
      "[scheduler]\n"
      "kind = ks4xen\n"
      "monitor = direct\n"
      "punish = block\n"
      "\n"
      "[vm tenant]\n"
      "app = " + app + "\n"
      "cores = 0\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[run]\n"
      "warmup_ticks = 1\n"
      "measure_ticks = 4\n"
      "seed = " + std::to_string(seed) + "\n";
}

std::vector<std::pair<std::string, std::string>> small_batch(int n) {
  const char* apps[] = {"gcc", "mcf", "omnetpp"};
  std::vector<std::pair<std::string, std::string>> jobs;
  for (int i = 0; i < n; ++i) {
    jobs.emplace_back("job" + std::to_string(i), tiny_scenario(apps[i % 3], 30 + i));
  }
  return jobs;
}

std::vector<RunOutcome> sweep_reference(
    const std::vector<std::pair<std::string, std::string>>& jobs) {
  SweepRunner sweep(2);
  for (const auto& [label, text] : jobs) {
    const Scenario scenario = parse_scenario(text);
    sweep.add(scenario.spec, scenario.plans, label);
  }
  return sweep.run();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);  // checkpoints/results from a previous run
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

HostFarmOptions base_options(const std::string& work_dir) {
  HostFarmOptions options;
  options.work_dir = work_dir;
  options.jobs_per_shard = 1;  // fine-grained redistribution
  options.host_failure_budget = 1;
  options.max_quarantines = 1;
  options.backoff.base_s = 0.02;
  options.shard_timeout_s = 5.0;
  return options;
}

void expect_identical(const std::vector<RunOutcome>& outcomes,
                      const std::vector<RunOutcome>& reference) {
  ASSERT_EQ(outcomes.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(outcomes[i], reference[i]) << "job " << i;
  }
}

TEST(HostFarm, CleanHostsMatchSweepByteForByte) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  const auto jobs = small_batch(6);
  HostFarmOptions options = base_options(fresh_dir("hostfarm_clean"));
  options.jobs_per_shard = 0;  // one balanced shard per host
  for (const char* id : {"h0", "h1", "h2"}) {
    options.hosts.push_back(HostSpec{id, worker_path(), {}});
  }
  HostFarm farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const std::vector<RunOutcome> outcomes = farm.run();
  expect_identical(outcomes, sweep_reference(jobs));
  EXPECT_EQ(farm.jobs_executed(), 6);
  EXPECT_EQ(farm.shard_attempts(), 3);
  EXPECT_EQ(farm.host_failure_count(), 0);
  EXPECT_FALSE(farm.degraded());
  for (int h = 0; h < 3; ++h) {
    EXPECT_EQ(farm.health()->stats(h).state, HostState::kHealthy);
  }
}

// The acceptance drill: one host killed mid-shard, one emitting
// corrupt result files, one hung past its budget, one healthy.  The
// batch must converge through quarantine + redistribution.
TEST(HostFarm, FaultDrillConvergesByteIdentical) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  const auto jobs = small_batch(6);
  HostFarmOptions options = base_options(fresh_dir("hostfarm_drill"));
  options.shard_timeout_s = 1.0;  // the hung host must burn out quickly
  options.hosts.push_back(HostSpec{"h-kill", worker_path(), {"--fault-kill-after", "1"}});
  options.hosts.push_back(
      HostSpec{"h-corrupt", worker_path(), {"--fault-corrupt-results", "bitflip"}});
  options.hosts.push_back(HostSpec{"h-hang", worker_path(), {"--fault-hang-after", "1"}});
  options.hosts.push_back(HostSpec{"h-ok", worker_path(), {}});
  HostFarm farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const std::vector<RunOutcome> outcomes = farm.run();
  expect_identical(outcomes, sweep_reference(jobs));

  // Every job landed, none in-process: the healthy host absorbed the
  // redistributed shards.
  EXPECT_EQ(farm.jobs_executed(), 6);
  EXPECT_EQ(farm.jobs_in_process(), 0);
  EXPECT_FALSE(farm.degraded());
  EXPECT_GE(farm.host_failure_count(), 3);  // each faulty host failed at least once
  EXPECT_GT(farm.shard_attempts(), 6);      // failures forced re-dispatches
  EXPECT_EQ(farm.health()->stats(3).state, HostState::kHealthy);  // h-ok
  EXPECT_GE(farm.health()->quarantine_count(), 1);

  const std::string report = farm.report();
  EXPECT_NE(report.find("quarantine"), std::string::npos);
  EXPECT_NE(report.find("redistribute"), std::string::npos);
  EXPECT_NE(report.find("h-corrupt"), std::string::npos);
  EXPECT_NE(report.find("corrupt result file"), std::string::npos);
}

TEST(HostFarm, AllHostsOutDegradesToInProcess) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  const auto jobs = small_batch(4);
  HostFarmOptions options = base_options(fresh_dir("hostfarm_degrade"));
  options.max_quarantines = 0;  // first budget burn retires
  options.hosts.push_back(HostSpec{"d0", worker_path(), {"--fault-kill-after", "1"}});
  options.hosts.push_back(HostSpec{"d1", worker_path(), {"--fault-kill-after", "1"}});
  HostFarm farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const std::vector<RunOutcome> outcomes = farm.run();
  expect_identical(outcomes, sweep_reference(jobs));
  EXPECT_TRUE(farm.degraded());
  EXPECT_EQ(farm.jobs_executed(), 0);
  EXPECT_EQ(farm.jobs_in_process(), 4);
  EXPECT_TRUE(farm.health()->all_retired());
  EXPECT_NE(farm.report().find("degrade"), std::string::npos);
}

// Randomized (but seeded) fault schedules: any mix of kill / corrupt
// / garbage / healthy hosts must still produce byte-identical
// outcomes — possibly via full degradation when every host is bad.
TEST(HostFarm, RandomizedFaultSchedulesStayByteIdentical) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  const auto jobs = small_batch(5);
  const std::vector<RunOutcome> reference = sweep_reference(jobs);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    HostFarmOptions options =
        base_options(fresh_dir("hostfarm_rand" + std::to_string(seed)));
    options.max_quarantines = 0;  // keep worst-case wall clock bounded
    for (int h = 0; h < 3; ++h) {
      std::vector<std::string> args;
      switch (mix64(seed * 1000 + static_cast<std::uint64_t>(h)) % 4) {
        case 0: break;  // healthy
        case 1: args = {"--fault-kill-after", "1"}; break;
        case 2: args = {"--fault-corrupt-results", "truncate"}; break;
        case 3: args = {"--fault-garbage-after", "1"}; break;
      }
      options.hosts.push_back(
          HostSpec{"r" + std::to_string(h), worker_path(), std::move(args)});
    }
    HostFarm farm(options);
    for (const auto& [label, text] : jobs) farm.add(text, label);
    const std::vector<RunOutcome> outcomes = farm.run();
    expect_identical(outcomes, reference);
    EXPECT_EQ(farm.jobs_executed() + farm.jobs_in_process(), 5) << "seed " << seed;
  }
}

TEST(HostFarm, DeterministicJobFailureNamesTheJobNotTheHost) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  const auto jobs = small_batch(3);
  HostFarmOptions options = base_options(fresh_dir("hostfarm_poison"));
  options.hosts.push_back(
      HostSpec{"p0", worker_path(), {"--fault-error-on-label", "job1"}});
  HostFarm farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  try {
    farm.run();
    FAIL() << "poisoned job should fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("job1"), std::string::npos) << what;
    EXPECT_NE(what.find("injected deterministic failure"), std::string::npos) << what;
  }
  // The host was never charged: this is a job fault, not a host fault.
  EXPECT_EQ(farm.health()->stats(0).state, HostState::kHealthy);
}

// Hand-built owner-aware resume: a checkpoint records two finished
// jobs and one outstanding shard owned by a (now gone) host whose
// result file exists.  The resume must restore 2, re-collect 2, and
// dispatch nothing.
TEST(HostFarm, ResumeRecollectsOwnedShardsWithoutRerunning) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  const auto jobs = small_batch(4);
  const std::vector<RunOutcome> reference = sweep_reference(jobs);
  const std::string dir = fresh_dir("hostfarm_recollect");
  const std::string checkpoint = dir + "/farm.ckpt";

  // The exact FarmJob batch a HostFarm would build from add() calls.
  std::vector<farm::FarmJob> farm_jobs;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    farm::FarmJob job;
    job.id = i;
    job.label = jobs[i].first;
    job.scenario_text = jobs[i].second;
    farm_jobs.push_back(std::move(job));
  }

  {  // checkpoint: header + outcomes {0,1} + owner frame for {2,3}
    std::string bytes = farm::encode_frame(
        farm::FrameType::kCheckpointHeader,
        farm::encode_checkpoint_header({farm::batch_fingerprint(farm_jobs), farm_jobs.size()}));
    for (const std::size_t i : {0u, 1u}) {
      bytes += farm::encode_frame(farm::FrameType::kOutcome,
                                  farm::encode_outcome(i, reference[i]));
    }
    const farm::ShardOwner owner{"gone-host", "owned.results.kyfm", {2, 3}};
    bytes += farm::encode_frame(farm::FrameType::kShardOwner, farm::encode_shard_owner(owner));
    std::ofstream out(checkpoint, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {  // the orphaned host's finished result file
    std::vector<farm::FarmOutcome> results(2);
    results[0].id = 2;
    results[0].outcome = reference[2];
    results[1].id = 3;
    results[1].outcome = reference[3];
    farm::write_result_file(dir + "/owned.results.kyfm", results);
  }

  HostFarmOptions options = base_options(dir);
  options.checkpoint_path = checkpoint;
  options.hosts.push_back(HostSpec{"h0", worker_path(), {}});
  HostFarm farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const std::vector<RunOutcome> outcomes = farm.run();
  expect_identical(outcomes, reference);
  EXPECT_EQ(farm.jobs_restored(), 2);
  EXPECT_EQ(farm.jobs_recollected(), 2);
  EXPECT_EQ(farm.jobs_executed(), 0);   // nothing re-ran
  EXPECT_EQ(farm.shard_attempts(), 0);  // nothing was even dispatched
  EXPECT_NE(farm.report().find("recollect"), std::string::npos);
}

// End-to-end orphan drill: the coordinator aborts mid-batch leaving
// its workers alive; they finish their result files; the resumed
// coordinator re-collects whatever they completed and re-runs only
// the rest.
TEST(HostFarm, InterruptWithOrphansResumesViaRecollect) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  const auto jobs = small_batch(4);
  const std::vector<RunOutcome> reference = sweep_reference(jobs);
  const std::string dir = fresh_dir("hostfarm_orphan");
  const std::string checkpoint = dir + "/farm.ckpt";

  HostFarmOptions options = base_options(dir);
  options.checkpoint_path = checkpoint;
  options.abort_after_shards = 1;
  options.orphan_on_abort = true;
  options.hosts.push_back(HostSpec{"h0", worker_path(), {}});
  options.hosts.push_back(HostSpec{"h1", worker_path(), {}});
  {
    HostFarm farm(options);
    for (const auto& [label, text] : jobs) farm.add(text, label);
    EXPECT_THROW(farm.run(), HostFarmInterrupted);
  }

  // Read the owner frames out of the interrupt checkpoint, then wait
  // for the orphaned workers to finish those result files.
  std::vector<farm::ShardOwner> owners;
  int restored_in_checkpoint = 0;
  for (const farm::Frame& frame : farm::read_frame_file(checkpoint)) {
    if (frame.type == farm::FrameType::kShardOwner) {
      owners.push_back(farm::decode_shard_owner(frame.payload));
    } else if (frame.type == farm::FrameType::kOutcome) {
      ++restored_in_checkpoint;
    }
  }
  EXPECT_GE(restored_in_checkpoint, 1);
  int owned_jobs = 0;
  for (const farm::ShardOwner& owner : owners) {
    owned_jobs += static_cast<int>(owner.job_ids.size());
    farm::HostShard shard;
    shard.host_id = owner.host_id;
    shard.result_file = owner.result_file;
    shard.job_ids = owner.job_ids;
    shard.labels.assign(owner.job_ids.size(), "");
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (collect_shard(shard, dir + "/" + owner.result_file).state !=
           ShardCollect::State::kOk) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "orphaned worker never finished " << owner.result_file;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  options.abort_after_shards = -1;
  options.orphan_on_abort = false;
  HostFarm resumed(options);
  for (const auto& [label, text] : jobs) resumed.add(text, label);
  const std::vector<RunOutcome> outcomes = resumed.run();
  expect_identical(outcomes, reference);
  // Completed work was restored, orphan-owned work was re-collected
  // (not re-run), and only the remainder was dispatched.
  EXPECT_EQ(resumed.jobs_restored(), restored_in_checkpoint);
  EXPECT_EQ(resumed.jobs_recollected(), owned_jobs);
  EXPECT_EQ(resumed.jobs_executed(), 4 - restored_in_checkpoint - owned_jobs);
}

TEST(HostFarm, ForeignOrCorruptCheckpointRestartsCleanly) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  const auto jobs = small_batch(2);
  const std::string dir = fresh_dir("hostfarm_badckpt");
  const std::string checkpoint = dir + "/farm.ckpt";
  {
    std::ofstream out(checkpoint, std::ios::binary);
    out << "not a checkpoint at all";
  }
  HostFarmOptions options = base_options(dir);
  options.checkpoint_path = checkpoint;
  options.hosts.push_back(HostSpec{"h0", worker_path(), {}});
  HostFarm farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);
  const std::vector<RunOutcome> outcomes = farm.run();
  expect_identical(outcomes, sweep_reference(jobs));
  EXPECT_EQ(farm.jobs_restored(), 0);
  EXPECT_EQ(farm.jobs_executed(), 2);
  EXPECT_NE(farm.report().find("restart"), std::string::npos);
}

}  // namespace
}  // namespace kyoto::sim
