// Backoff + host-health gate.
//
// The BackoffPolicy schedule is *pinned*: the literals below are the
// exact delays the default policy produces.  They are part of the
// farm's observable behavior (tests and drills time against them), so
// a change here is a deliberate retuning, not noise — the jitter is
// seeded and keyed, never wall-clock random.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/farm_codec.hpp"
#include "sim/farm_runner.hpp"
#include "sim/host_health.hpp"
#include "sim/scenario_file.hpp"
#include "sim/sweep_runner.hpp"

namespace kyoto::sim {
namespace {

TEST(BackoffPolicy, DefaultScheduleIsPinned) {
  const BackoffPolicy policy;  // base 0.05s, max 30s, jitter 0.25, default seed
  EXPECT_DOUBLE_EQ(policy.delay_s(0, 0), 0.051947380888928966);
  EXPECT_DOUBLE_EQ(policy.delay_s(1, 0), 0.11359431114881176);
  EXPECT_DOUBLE_EQ(policy.delay_s(2, 0), 0.24560978758555851);
  EXPECT_DOUBLE_EQ(policy.delay_s(3, 0), 0.41432039566788115);
  // Keyed on a host id, the jitter lands elsewhere — deterministically.
  const std::uint64_t host_a = farm::fnv1a("hostA");
  EXPECT_EQ(host_a, 4262922559028208938ull);
  EXPECT_DOUBLE_EQ(policy.delay_s(0, host_a), 0.051581302503531545);
  EXPECT_DOUBLE_EQ(policy.delay_s(1, host_a), 0.10559959207643582);
}

TEST(BackoffPolicy, JitterIsBoundedAndDeterministic) {
  BackoffPolicy policy;
  policy.base_s = 0.1;
  policy.max_s = 5.0;
  policy.jitter_frac = 0.25;
  for (int attempt = 0; attempt < 12; ++attempt) {
    for (const std::uint64_t key :
         {std::uint64_t{0}, std::uint64_t{17}, farm::fnv1a("h"), farm::fnv1a("hh")}) {
      const double raw = std::min(0.1 * static_cast<double>(1ull << attempt), 5.0);
      const double d = policy.delay_s(attempt, key);
      EXPECT_GE(d, raw) << attempt;
      EXPECT_LT(d, raw * 1.25) << attempt;
      EXPECT_DOUBLE_EQ(d, policy.delay_s(attempt, key));  // pure function
    }
  }
  // Different keys at the same attempt land at different points:
  // a quarantined fleet never thunders back in lockstep.
  EXPECT_NE(policy.delay_s(3, farm::fnv1a("h")), policy.delay_s(3, farm::fnv1a("hh")));
  // base_s <= 0 disables the delay entirely.
  BackoffPolicy off;
  off.base_s = 0.0;
  EXPECT_EQ(off.delay_s(5, 42), 0.0);
}

TEST(HostHealthTracker, BudgetQuarantineReadmitRetireLifecycle) {
  BackoffPolicy backoff;
  backoff.base_s = 1.0;
  backoff.jitter_frac = 0.0;  // exact delays for this test
  HostHealthTracker tracker({"flaky", "solid"}, /*failure_budget=*/2,
                            /*max_quarantines=*/1, backoff);
  EXPECT_TRUE(tracker.usable(0, 0.0));
  EXPECT_TRUE(tracker.usable(1, 0.0));

  // One failure stays under budget; the second burns it -> quarantine.
  EXPECT_EQ(tracker.record_failure(0, 1.0, "died"), HostState::kHealthy);
  EXPECT_EQ(tracker.record_failure(0, 2.0, "died again"), HostState::kQuarantined);
  EXPECT_FALSE(tracker.usable(0, 2.5));
  EXPECT_DOUBLE_EQ(tracker.next_available_s(), 3.0);  // 2.0 + base * 2^0

  // Quarantine expiry re-admits with a refreshed budget...
  EXPECT_TRUE(tracker.usable(0, 3.5));
  EXPECT_EQ(tracker.stats(0).quarantines, 1);
  // ...and a success clears the consecutive-failure streak.
  tracker.record_failure(0, 4.0, "hiccup");
  tracker.record_success(0, 5.0, "shard1.jobs.kyfm", 3);
  EXPECT_EQ(tracker.stats(0).consecutive_failures, 0);

  // The next burned budget exceeds max_quarantines -> retired for good.
  tracker.record_failure(0, 6.0, "died");
  EXPECT_EQ(tracker.record_failure(0, 7.0, "died"), HostState::kRetired);
  EXPECT_FALSE(tracker.usable(0, 100.0));
  EXPECT_FALSE(tracker.all_retired());  // "solid" is still in the game
  tracker.record_failure(1, 8.0, "died");
  EXPECT_EQ(tracker.record_failure(1, 8.5, "died"), HostState::kQuarantined);
  tracker.usable(1, 100.0);
  tracker.record_failure(1, 101.0, "died");
  EXPECT_EQ(tracker.record_failure(1, 102.0, "died"), HostState::kRetired);
  EXPECT_TRUE(tracker.all_retired());

  // Every transition landed in the structured report.
  const std::string report = tracker.report();
  EXPECT_NE(report.find("quarantine"), std::string::npos);
  EXPECT_NE(report.find("readmit"), std::string::npos);
  EXPECT_NE(report.find("retire"), std::string::npos);
  EXPECT_NE(report.find("host flaky"), std::string::npos);
  EXPECT_NE(report.find("host solid"), std::string::npos);
}

// ---------------------------------------------------------------- FarmRunner

std::string worker_path() {
  if (const char* env = std::getenv("KYOTO_SWEEP_WORKER"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "./sweep_worker";
}

bool worker_available() { return ::access(worker_path().c_str(), X_OK) == 0; }

std::string tiny_scenario(const std::string& app, int seed) {
  return
      "[machine]\n"
      "topology = 1x2\n"
      "scale = 64\n"
      "\n"
      "[scheduler]\n"
      "kind = ks4xen\n"
      "monitor = direct\n"
      "punish = block\n"
      "\n"
      "[vm tenant]\n"
      "app = " + app + "\n"
      "cores = 0\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[run]\n"
      "warmup_ticks = 1\n"
      "measure_ticks = 4\n"
      "seed = " + std::to_string(seed) + "\n";
}

TEST(FarmRunnerBackoff, RespawnsAreDelayedByTheSchedule) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  std::vector<std::pair<std::string, std::string>> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.emplace_back("job" + std::to_string(i), tiny_scenario(i % 2 ? "mcf" : "gcc", 20 + i));
  }
  SweepRunner sweep(2);
  for (const auto& [label, text] : jobs) {
    const Scenario scenario = parse_scenario(text);
    sweep.add(scenario.spec, scenario.plans, label);
  }
  const std::vector<RunOutcome> reference = sweep.run();

  FarmOptions options;
  options.workers = 1;
  options.worker_path = worker_path();
  // Every worker process completes one job, then is killed on its
  // second: 3 deaths for 4 jobs, each a fresh slot-attempt-0 backoff.
  options.worker_args = {"--fault-kill-after", "2"};
  options.max_retries = 4;
  options.respawn_backoff.base_s = 0.2;
  options.respawn_backoff.jitter_frac = 0.0;
  FarmRunner farm(options);
  for (const auto& [label, text] : jobs) farm.add(text, label);

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<RunOutcome> outcomes = farm.run();
  const double elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();

  EXPECT_FALSE(farm.ran_in_process());
  EXPECT_GE(farm.worker_respawns(), 3);
  // 3 respawns at >= 0.2s apiece must dominate the wall clock.
  EXPECT_GE(elapsed, 0.55) << "respawn backoff was not applied";
  ASSERT_EQ(outcomes.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(outcomes[i], reference[i]) << "job " << i;
  }
}

TEST(FarmRunnerBackoff, ZeroBaseKeepsTheOldFastPath) {
  if (!worker_available()) GTEST_SKIP() << "sweep_worker binary not found";
  FarmOptions options;
  options.workers = 2;
  options.worker_path = worker_path();
  options.worker_args = {"--fault-kill-after", "2"};
  options.max_retries = 4;
  options.respawn_backoff.base_s = 0.0;  // disabled
  FarmRunner farm(options);
  for (int i = 0; i < 4; ++i) {
    farm.add(tiny_scenario(i % 2 ? "mcf" : "gcc", 20 + i), "job" + std::to_string(i));
  }
  const std::vector<RunOutcome> outcomes = farm.run();
  EXPECT_EQ(outcomes.size(), 4u);
  EXPECT_FALSE(farm.ran_in_process());
}

}  // namespace
}  // namespace kyoto::sim
