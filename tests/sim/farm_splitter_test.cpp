// Shard-splitter gate: partitioning a batch into per-host job files,
// the manifest binding them to the exact batch, and the
// validate-all-before-apply merge.  Golden byte fixtures pin the two
// additive wire frames (kHostManifest, kShardOwner) exactly like the
// v1 frames in farm_codec_test.cpp: a mismatch means split batches in
// flight stopped being mergeable, which requires a loud version bump.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <fstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/farm_codec.hpp"
#include "sim/scenario_file.hpp"
#include "sim/shard_splitter.hpp"
#include "sim/sweep_runner.hpp"

namespace kyoto::sim {
namespace {

std::string tiny_scenario(const std::string& app, int seed) {
  return
      "[machine]\n"
      "topology = 1x2\n"
      "scale = 64\n"
      "\n"
      "[scheduler]\n"
      "kind = ks4xen\n"
      "monitor = direct\n"
      "punish = block\n"
      "\n"
      "[vm tenant]\n"
      "app = " + app + "\n"
      "cores = 0\n"
      "llc_cap = 30\n"
      "loop = true\n"
      "\n"
      "[run]\n"
      "warmup_ticks = 1\n"
      "measure_ticks = 4\n"
      "seed = " + std::to_string(seed) + "\n";
}

std::vector<farm::FarmJob> small_batch(std::size_t n) {
  const char* apps[] = {"gcc", "mcf", "omnetpp"};
  std::vector<farm::FarmJob> jobs;
  for (std::size_t i = 0; i < n; ++i) {
    farm::FarmJob job;
    job.id = i;
    job.label = "job" + std::to_string(i);
    job.scenario_text = tiny_scenario(apps[i % 3], static_cast<int>(i) + 7);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<RunOutcome> sweep_reference(const std::vector<farm::FarmJob>& jobs) {
  SweepRunner sweep(2);
  for (const farm::FarmJob& job : jobs) {
    const Scenario scenario = parse_scenario(job.scenario_text);
    sweep.add(scenario.spec, scenario.plans, job.label);
  }
  return sweep.run();
}

/// Executes one shard in-process and writes its result file — the
/// moral equivalent of a healthy remote host.
void run_shard(const std::string& dir, const farm::HostShard& shard,
               const std::vector<farm::FarmJob>& jobs) {
  std::vector<farm::FarmOutcome> results;
  for (const std::uint64_t id : shard.job_ids) {
    const Scenario scenario = parse_scenario(jobs[static_cast<std::size_t>(id)].scenario_text);
    farm::FarmOutcome result;
    result.id = id;
    result.outcome = run_scenario(scenario.spec, scenario.plans);
    results.push_back(std::move(result));
  }
  farm::write_result_file(dir + "/" + shard.result_file, results);
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ShardSplitter, BalancedSplitCoversEveryJobOnce) {
  const std::vector<farm::FarmJob> jobs = small_batch(7);
  const farm::ShardManifest manifest = split_batch(jobs, {"a", "b", "c"});
  EXPECT_EQ(manifest.fingerprint, farm::batch_fingerprint(jobs));
  EXPECT_EQ(manifest.total_jobs, 7u);
  ASSERT_EQ(manifest.shards.size(), 3u);  // ceil(7/3) = 3 per shard
  EXPECT_EQ(manifest.shards[0].host_id, "a");
  EXPECT_EQ(manifest.shards[1].host_id, "b");
  EXPECT_EQ(manifest.shards[2].host_id, "c");
  std::vector<std::uint64_t> seen;
  for (const farm::HostShard& shard : manifest.shards) {
    ASSERT_EQ(shard.job_ids.size(), shard.labels.size());
    for (std::size_t i = 0; i < shard.job_ids.size(); ++i) {
      EXPECT_EQ(shard.labels[i], jobs[static_cast<std::size_t>(shard.job_ids[i])].label);
      seen.push_back(shard.job_ids[i]);
    }
  }
  ASSERT_EQ(seen.size(), 7u);
  for (std::uint64_t i = 0; i < 7; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(ShardSplitter, JobsPerShardControlsGranularityAndWrapsHosts) {
  const std::vector<farm::FarmJob> jobs = small_batch(5);
  const farm::ShardManifest manifest = split_batch(jobs, {"a", "b"}, 2);
  ASSERT_EQ(manifest.shards.size(), 3u);
  EXPECT_EQ(manifest.shards[0].job_ids.size(), 2u);
  EXPECT_EQ(manifest.shards[1].job_ids.size(), 2u);
  EXPECT_EQ(manifest.shards[2].job_ids.size(), 1u);
  EXPECT_EQ(manifest.shards[2].host_id, "a");  // round-robin wraps
  EXPECT_EQ(manifest.shards[0].job_file, "shard0.jobs.kyfm");
  EXPECT_EQ(manifest.shards[0].result_file, "shard0.results.kyfm");
}

TEST(ShardSplitter, ManifestFileRoundTrips) {
  const std::vector<farm::FarmJob> jobs = small_batch(4);
  const farm::ShardManifest manifest = split_batch(jobs, {"left", "right"});
  const std::string dir = testing::TempDir() + "splitter_roundtrip";
  ::mkdir(dir.c_str(), 0755);
  write_shard_files(dir, manifest, jobs);
  const farm::ShardManifest back = farm::read_manifest_file(manifest_path(dir));
  EXPECT_EQ(back, manifest);
  // The shard job files really carry their slices.
  const std::vector<farm::FarmJob> slice = farm::read_job_file(dir + "/shard1.jobs.kyfm");
  ASSERT_EQ(slice.size(), manifest.shards[1].job_ids.size());
  EXPECT_EQ(slice[0].id, manifest.shards[1].job_ids[0]);
  EXPECT_EQ(slice[0].label, manifest.shards[1].labels[0]);
}

// ------------------------------------------------------------ golden bytes
//
// Pin the two additive frames byte for byte (captured from the
// encoder once; never regenerate casually — see farm_codec_test.cpp).

constexpr char kGoldenManifest[] =
    "\x4b\x59\x46\x4d\x01\x00\x05\x00\xdb\x00\x00\x00\x00\x00\x00\x00\x88\x77\x66\x55\x44"
    "\x33\x22\x11\x03\x00\x00\x00\x00\x00\x00\x00\x02\x00\x00\x00\x00\x00\x00\x00\x05\x00"
    "\x00\x00\x00\x00\x00\x00\x68\x6f\x73\x74\x41\x10\x00\x00\x00\x00\x00\x00\x00\x73\x68"
    "\x61\x72\x64\x30\x2e\x6a\x6f\x62\x73\x2e\x6b\x79\x66\x6d\x13\x00\x00\x00\x00\x00\x00"
    "\x00\x73\x68\x61\x72\x64\x30\x2e\x72\x65\x73\x75\x6c\x74\x73\x2e\x6b\x79\x66\x6d\x02"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00"
    "\x00\x00\x61\x02\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x63\x05"
    "\x00\x00\x00\x00\x00\x00\x00\x68\x6f\x73\x74\x42\x10\x00\x00\x00\x00\x00\x00\x00\x73"
    "\x68\x61\x72\x64\x31\x2e\x6a\x6f\x62\x73\x2e\x6b\x79\x66\x6d\x13\x00\x00\x00\x00\x00"
    "\x00\x00\x73\x68\x61\x72\x64\x31\x2e\x72\x65\x73\x75\x6c\x74\x73\x2e\x6b\x79\x66\x6d"
    "\x01\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00"
    "\x00\x00\x00\x62\x96\xf8\xf9\xcf\xc0\x73\x43\x9b";
constexpr std::size_t kGoldenManifestLen = 243;

constexpr char kGoldenOwner[] =
    "\x4b\x59\x46\x4d\x01\x00\x06\x00\x38\x00\x00\x00\x00\x00\x00\x00\x05\x00\x00\x00\x00"
    "\x00\x00\x00\x68\x6f\x73\x74\x42\x13\x00\x00\x00\x00\x00\x00\x00\x73\x68\x61\x72\x64"
    "\x31\x2e\x72\x65\x73\x75\x6c\x74\x73\x2e\x6b\x79\x66\x6d\x01\x00\x00\x00\x00\x00\x00"
    "\x00\x01\x00\x00\x00\x00\x00\x00\x00\x3b\xb2\xb1\x78\x22\x9c\x17\x5b";
constexpr std::size_t kGoldenOwnerLen = 80;

farm::ShardManifest sample_manifest() {
  farm::ShardManifest m;
  m.fingerprint = 0x1122334455667788ull;
  m.total_jobs = 3;
  m.shards.push_back(
      farm::HostShard{"hostA", "shard0.jobs.kyfm", "shard0.results.kyfm", {0, 2}, {"a", "c"}});
  m.shards.push_back(
      farm::HostShard{"hostB", "shard1.jobs.kyfm", "shard1.results.kyfm", {1}, {"b"}});
  return m;
}

TEST(ShardSplitterGolden, ManifestFrameBytesArePinned) {
  const std::string encoded =
      farm::encode_frame(farm::FrameType::kHostManifest, farm::encode_manifest(sample_manifest()));
  EXPECT_EQ(encoded, std::string(kGoldenManifest, kGoldenManifestLen));
}

TEST(ShardSplitterGolden, OwnerFrameBytesArePinned) {
  const farm::ShardOwner owner{"hostB", "shard1.results.kyfm", {1}};
  const std::string encoded =
      farm::encode_frame(farm::FrameType::kShardOwner, farm::encode_shard_owner(owner));
  EXPECT_EQ(encoded, std::string(kGoldenOwner, kGoldenOwnerLen));
}

TEST(ShardSplitterGolden, PinnedBytesDecodeBack) {
  farm::FrameReader reader;
  reader.feed(kGoldenManifest, kGoldenManifestLen);
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, farm::FrameType::kHostManifest);
  EXPECT_EQ(farm::decode_manifest(frame->payload), sample_manifest());

  farm::FrameReader reader2;
  reader2.feed(kGoldenOwner, kGoldenOwnerLen);
  const auto frame2 = reader2.next();
  ASSERT_TRUE(frame2.has_value());
  ASSERT_EQ(frame2->type, farm::FrameType::kShardOwner);
  const farm::ShardOwner owner = farm::decode_shard_owner(frame2->payload);
  EXPECT_EQ(owner, (farm::ShardOwner{"hostB", "shard1.results.kyfm", {1}}));
}

TEST(ShardSplitter, MalformedManifestsAreParseErrors) {
  const std::string dir = testing::TempDir() + "splitter_malformed";
  ::mkdir(dir.c_str(), 0755);
  // Not a frame file at all.
  write_bytes(manifest_path(dir), "this is not a KYFM manifest\n");
  EXPECT_THROW(farm::read_manifest_file(manifest_path(dir)), farm::CodecError);
  // A valid frame file of the wrong frame type.
  write_bytes(manifest_path(dir),
              farm::encode_frame(farm::FrameType::kError, farm::encode_error(0, "nope")));
  EXPECT_THROW(farm::read_manifest_file(manifest_path(dir)), farm::CodecError);
  // A manifest frame with a truncated payload (bad checksum).
  std::string damaged(kGoldenManifest, kGoldenManifestLen);
  damaged.resize(damaged.size() - 3);
  write_bytes(manifest_path(dir), damaged);
  EXPECT_THROW(farm::read_manifest_file(manifest_path(dir)), farm::CodecError);
  // Internally inconsistent: labels/job_ids length mismatch refuses to encode.
  farm::ShardManifest bad = sample_manifest();
  bad.shards[0].labels.pop_back();
  EXPECT_THROW(farm::encode_manifest(bad), farm::CodecError);
}

TEST(ShardSplitter, MergeReproducesSweepByteForByte) {
  const std::vector<farm::FarmJob> jobs = small_batch(6);
  const farm::ShardManifest manifest = split_batch(jobs, {"h0", "h1", "h2"});
  const std::string dir = testing::TempDir() + "splitter_merge_ok";
  ::mkdir(dir.c_str(), 0755);
  write_shard_files(dir, manifest, jobs);
  for (const farm::HostShard& shard : manifest.shards) run_shard(dir, shard, jobs);

  const MergeReport merged = merge_results(manifest, dir);
  ASSERT_TRUE(merged.complete) << merged.summary();
  const std::vector<RunOutcome> reference = sweep_reference(jobs);
  ASSERT_EQ(merged.outcomes.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(merged.outcomes[i], reference[i]) << "job " << i;
  }
}

TEST(ShardSplitter, MergeDiagnosesEveryBadShardByHost) {
  const std::vector<farm::FarmJob> jobs = small_batch(6);
  // One job per shard so each host owns exactly one failure mode.
  const farm::ShardManifest manifest =
      split_batch(jobs, {"ok", "missing", "corrupt", "foreign", "incomplete", "poisoned"}, 1);
  ASSERT_EQ(manifest.shards.size(), 6u);
  const std::string dir = testing::TempDir() + "splitter_merge_bad";
  ::mkdir(dir.c_str(), 0755);
  write_shard_files(dir, manifest, jobs);

  run_shard(dir, manifest.shards[0], jobs);  // ok
  // missing: never write shards[1]'s result file.
  write_bytes(dir + "/" + manifest.shards[2].result_file, "garbage bytes, not frames");
  {  // foreign: outcomes for a job id outside the shard
    std::vector<farm::FarmOutcome> alien(1);
    alien[0].id = 0;  // belongs to shard 0, not shard 3
    farm::write_result_file(dir + "/" + manifest.shards[3].result_file, alien);
  }
  // incomplete: a valid, empty result file covers none of the expected ids.
  farm::write_result_file(dir + "/" + manifest.shards[4].result_file, {});
  // poisoned: the worker reported a deterministic job failure.
  write_bytes(dir + "/" + manifest.shards[5].result_file,
              farm::encode_frame(farm::FrameType::kError,
                                 farm::encode_error(manifest.shards[5].job_ids[0], "boom")));

  const MergeReport merged = merge_results(manifest, dir);
  EXPECT_FALSE(merged.complete);
  EXPECT_TRUE(merged.outcomes.empty());  // all-or-nothing: nothing applied
  ASSERT_EQ(merged.lines.size(), 6u);
  EXPECT_EQ(merged.lines[0].state, ShardCollect::State::kOk);
  EXPECT_EQ(merged.lines[1].state, ShardCollect::State::kMissingFile);
  EXPECT_EQ(merged.lines[2].state, ShardCollect::State::kCorrupt);
  EXPECT_EQ(merged.lines[3].state, ShardCollect::State::kForeign);
  EXPECT_EQ(merged.lines[4].state, ShardCollect::State::kIncomplete);
  EXPECT_EQ(merged.lines[5].state, ShardCollect::State::kDeterministic);
  for (std::size_t s = 0; s < 6; ++s) {
    EXPECT_EQ(merged.lines[s].host_id, manifest.shards[s].host_id);
  }
  // The summary names each host with its diagnosis.
  const std::string summary = merged.summary();
  EXPECT_NE(summary.find("missing result file"), std::string::npos);
  EXPECT_NE(summary.find("host poisoned"), std::string::npos);
  EXPECT_NE(summary.find("boom"), std::string::npos);
}

TEST(ShardSplitter, CollectRejectsDuplicateIds) {
  const std::vector<farm::FarmJob> jobs = small_batch(2);
  const farm::ShardManifest manifest = split_batch(jobs, {"only"});
  const std::string dir = testing::TempDir() + "splitter_dup";
  ::mkdir(dir.c_str(), 0755);
  std::vector<farm::FarmOutcome> dup(2);
  dup[0].id = 0;
  dup[1].id = 0;  // same job twice
  farm::write_result_file(dir + "/" + manifest.shards[0].result_file, dup);
  const ShardCollect collect =
      collect_shard(manifest.shards[0], dir + "/" + manifest.shards[0].result_file);
  EXPECT_EQ(collect.state, ShardCollect::State::kForeign);
  EXPECT_NE(collect.detail.find("twice"), std::string::npos);
}

TEST(ShardSplitter, HostWeightsSizeShardsProportionally) {
  const std::vector<farm::FarmJob> jobs = small_batch(12);
  // fast is 2x the capability of each slow host: 6 / 3 / 3.
  const farm::ShardManifest manifest =
      split_batch(jobs, {"fast", "slow-a", "slow-b"}, 0, {2.0, 1.0, 1.0});
  ASSERT_EQ(manifest.shards.size(), 3u);
  EXPECT_EQ(manifest.shards[0].host_id, "fast");
  EXPECT_EQ(manifest.shards[0].job_ids.size(), 6u);
  EXPECT_EQ(manifest.shards[1].job_ids.size(), 3u);
  EXPECT_EQ(manifest.shards[2].job_ids.size(), 3u);
  // Slices stay contiguous and cover every job exactly once.
  std::uint64_t next = 0;
  for (const farm::HostShard& shard : manifest.shards) {
    for (const std::uint64_t id : shard.job_ids) EXPECT_EQ(id, next++);
  }
  EXPECT_EQ(next, 12u);
}

TEST(ShardSplitter, HostWeightsApportionRemaindersDeterministically) {
  // 7 jobs at 3:2:2 — exact shares 3.0/2.0/2.0; and 8 jobs at weights
  // with equal fractional parts break ties in host order.
  const std::vector<farm::FarmJob> jobs = small_batch(7);
  const farm::ShardManifest manifest =
      split_batch(jobs, {"a", "b", "c"}, 0, {3.0, 2.0, 2.0});
  ASSERT_EQ(manifest.shards.size(), 3u);
  EXPECT_EQ(manifest.shards[0].job_ids.size(), 3u);
  EXPECT_EQ(manifest.shards[1].job_ids.size(), 2u);
  EXPECT_EQ(manifest.shards[2].job_ids.size(), 2u);
}

TEST(ShardSplitter, ZeroQuotaHostGetsNoShard) {
  // A host far too slow to earn one job is omitted entirely — no file
  // for it to come back late with.
  const std::vector<farm::FarmJob> jobs = small_batch(4);
  const farm::ShardManifest manifest =
      split_batch(jobs, {"fast", "glacial"}, 0, {100.0, 0.001});
  ASSERT_EQ(manifest.shards.size(), 1u);
  EXPECT_EQ(manifest.shards[0].host_id, "fast");
  EXPECT_EQ(manifest.shards[0].job_ids.size(), 4u);
}

TEST(ShardSplitter, WeightedManifestMergesLikeAnyOther) {
  // The weighted split changes only slice sizes: the files, manifest
  // and validate-all-before-apply merge are the same machinery, and
  // the merged outcomes equal the in-process sweep byte for byte.
  const std::vector<farm::FarmJob> jobs = small_batch(5);
  const farm::ShardManifest manifest = split_batch(jobs, {"big", "small"}, 0, {4.0, 1.0});
  ASSERT_EQ(manifest.shards.size(), 2u);
  EXPECT_EQ(manifest.shards[0].job_ids.size(), 4u);
  EXPECT_EQ(manifest.shards[1].job_ids.size(), 1u);
  const std::string dir = testing::TempDir() + "splitter_weighted";
  ::mkdir(dir.c_str(), 0755);
  write_shard_files(dir, manifest, jobs);
  for (const farm::HostShard& shard : manifest.shards) run_shard(dir, shard, jobs);
  const MergeReport report = merge_results(manifest, dir);
  ASSERT_TRUE(report.complete) << report.summary();
  const std::vector<RunOutcome> want = sweep_reference(jobs);
  ASSERT_EQ(report.outcomes.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(report.outcomes[i], want[i]) << "job " << i;
  }
}

TEST(ShardSplitter, WeightValidation) {
  const std::vector<farm::FarmJob> jobs = small_batch(3);
  // Count mismatch, non-positive weight, and combining weights with
  // an explicit shard size are all configuration errors.
  EXPECT_THROW(split_batch(jobs, {"a", "b"}, 0, {1.0}), std::logic_error);
  EXPECT_THROW(split_batch(jobs, {"a", "b"}, 0, {1.0, 0.0}), std::logic_error);
  EXPECT_THROW(split_batch(jobs, {"a", "b"}, 2, {1.0, 1.0}), std::logic_error);
}

}  // namespace
}  // namespace kyoto::sim
