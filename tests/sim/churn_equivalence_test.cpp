// Churn determinism gates.
//
// A churning scenario must stay bit-identical (whole-RunOutcome
// equality, which is exact — VmMetrics::operator== is never weakened
// to tolerances) across tick-execution thread counts {1,2,4} and
// SweepRunner lane counts {1,2,4}, and a replayed explicit trace must
// reproduce the generator-driven run event for event, byte for byte —
// including the per-tenant lifetime records the engine collects.
#include <gtest/gtest.h>

#include <memory>

#include "kyoto/ks4xen.hpp"
#include "kyoto/monitor.hpp"
#include "sim/churn_engine.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep_runner.hpp"
#include "test_util.hpp"

namespace kyoto::sim {
namespace {

std::shared_ptr<ChurnPlan> churn_plan(const hv::MachineConfig& machine) {
  auto plan = std::make_shared<ChurnPlan>();
  plan->trace.kind = ChurnTraceConfig::Kind::kPoisson;
  plan->trace.arrival_rate = 0.15;
  plan->trace.mean_lifetime_ticks = 8.0;
  plan->trace.horizon_ticks = 40;
  plan->trace.seed = 21;
  plan->tenant_config.llc_cap = 15.0;
  plan->tenant_config.loop_workload = true;
  plan->apps = {test::app_factory("mcf", machine), test::app_factory("gcc", machine)};
  plan->app_ids = {"mcf", "gcc"};
  plan->defer_queue = 4;
  return plan;
}

RunSpec churn_spec(int threads) {
  RunSpec spec;
  spec.machine = test::test_numa_machine();  // 2 sockets: threads matter
  spec.scheduler = [] {
    return std::make_unique<core::Ks4Xen>(std::make_unique<core::DirectPmcMonitor>());
  };
  spec.warmup_ticks = 3;
  spec.measure_ticks = 30;
  spec.threads = threads;
  spec.churn = churn_plan(spec.machine);
  return spec;
}

std::vector<VmPlan> victim_plan(const RunSpec& spec) {
  VmPlan victim;
  victim.config.name = "victim";
  victim.config.llc_cap = 20.0;
  victim.config.loop_workload = true;
  victim.workload = test::app_factory("mcf", spec.machine);
  victim.pinned_cores = {0};
  return {victim};
}

TEST(ChurnEquivalence, RunOutcomeIsByteIdenticalAcrossThreadCounts) {
  const RunOutcome serial = run_scenario(churn_spec(1), victim_plan(churn_spec(1)));
  ASSERT_GT(serial.vms.size(), 1u) << "no tenant survived to the report; the gate "
                                      "is not exercising churn";
  for (int threads : {2, 4}) {
    const RunSpec spec = churn_spec(threads);
    EXPECT_EQ(run_scenario(spec, victim_plan(spec)), serial) << threads << " threads";
  }
}

TEST(ChurnEquivalence, SweepOutcomesAreByteIdenticalAcrossLaneCounts) {
  std::vector<std::vector<RunOutcome>> per_lanes;
  for (int lanes : {1, 2, 4}) {
    SweepRunner runner(lanes);
    // Two churning jobs plus a static one, so lanes genuinely overlap.
    runner.add(churn_spec(1), victim_plan(churn_spec(1)), "churn-a");
    RunSpec b = churn_spec(1);
    b.seed = 77;
    runner.add(b, victim_plan(b), "churn-b");
    RunSpec quiet = churn_spec(1);
    quiet.churn = nullptr;
    runner.add(quiet, victim_plan(quiet), "static");
    per_lanes.push_back(runner.run());
  }
  ASSERT_EQ(per_lanes[0].size(), 3u);
  EXPECT_EQ(per_lanes[1], per_lanes[0]);
  EXPECT_EQ(per_lanes[2], per_lanes[0]);
}

TEST(ChurnEquivalence, ExplicitTraceReplayMatchesGeneratorRun) {
  const RunSpec generated = churn_spec(1);

  RunSpec replayed = churn_spec(1);
  auto replay_plan = std::make_shared<ChurnPlan>(*replayed.churn);
  replay_plan->explicit_trace = generate_churn_trace(replay_plan->trace);
  ASSERT_FALSE(replay_plan->explicit_trace.empty());
  replayed.churn = replay_plan;

  EXPECT_EQ(run_scenario(replayed, victim_plan(replayed)),
            run_scenario(generated, victim_plan(generated)));
}

/// The engine's own records — tenant lifetimes, counters, punishment,
/// admission stats — must be identical across thread counts and
/// between generator and replay.
TEST(ChurnEquivalence, TenantRecordsAreIdenticalAcrossThreadsAndReplay) {
  const auto run_engine = [](const RunSpec& spec) {
    auto hv = build_scenario(spec, victim_plan(spec));
    ChurnEngine engine(*hv, *spec.churn, /*seed=*/123);
    hv->run_ticks(33);
    engine.finalize();
    return std::make_pair(engine.tenants(), engine.stats());
  };

  RunSpec base = churn_spec(1);
  const auto [tenants, stats] = run_engine(base);
  ASSERT_GT(stats.arrivals, 0);
  ASSERT_GT(stats.departed, 0) << "no tenant departed in-window; weak scenario";

  RunSpec threaded = churn_spec(4);
  const auto [tenants_mt, stats_mt] = run_engine(threaded);
  EXPECT_EQ(tenants_mt, tenants);
  EXPECT_EQ(stats_mt, stats);

  RunSpec replay = churn_spec(1);
  auto replay_plan = std::make_shared<ChurnPlan>(*replay.churn);
  replay_plan->explicit_trace = generate_churn_trace(replay_plan->trace);
  replay.churn = replay_plan;
  const auto [tenants_replay, stats_replay] = run_engine(replay);
  EXPECT_EQ(tenants_replay, tenants);
  EXPECT_EQ(stats_replay, stats);
}

}  // namespace
}  // namespace kyoto::sim
