// SweepRunner acceptance gate: sharded execution must be
// *byte-identical* to the serial loop at every lane count — same
// per-job RunOutcomes, same ordering — including with solo
// memoization collapsing duplicate baselines.  Exact equality by
// design; never weaken to tolerances.
#include "sim/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kyoto/ks4xen.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::sim {
namespace {

VmPlan plan_for(const char* app, const RunSpec& spec, int core, bool loop,
                double llc_cap = 0.0) {
  VmPlan plan;
  plan.config.name = app;
  plan.config.loop_workload = loop;
  plan.config.llc_cap = llc_cap;
  plan.workload = test::app_factory(app, spec.machine);
  plan.pinned_cores = {core};
  return plan;
}

/// A figure-style batch: mixes × schedulers across two machines, with
/// duplicated solo baselines sprinkled between scenario jobs.  The
/// constructor computes, per job index, what the serial loop produces
/// (plain run_scenario/run_solo — the oracle); submit() enqueues the
/// identical jobs into a SweepRunner.
class Batch {
 public:
  Batch() {
    // Mix 1 on the default scaled machine, XCS then KS4Xen.
    RunSpec spec = test::quick_spec(3, 12);
    scenario(spec, {plan_for("gcc", spec, 0, false), plan_for("lbm", spec, 1, true)});
    solo(spec, "gcc");
    RunSpec kyoto_spec = spec;
    kyoto_spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };
    scenario(kyoto_spec, {plan_for("gcc", kyoto_spec, 0, false, 20.0),
                          plan_for("lbm", kyoto_spec, 1, true, 20.0)});
    solo(spec, "gcc");  // duplicate: must memoize

    // Mix 2 on the NUMA machine with a different window and seed.
    RunSpec numa = test::quick_spec(2, 9);
    numa.machine = test::test_numa_machine();
    numa.seed = 7;
    scenario(numa, {plan_for("omnetpp", numa, 0, true), plan_for("xalan", numa, 4, true)});
    solo(numa, "omnetpp");
    solo(spec, "gcc");  // third request of the same baseline
  }

  void submit(SweepRunner& sweep) const {
    for (const auto& job : jobs_) {
      if (job.solo_app.empty()) {
        sweep.add(job.spec, job.plans);
      } else {
        sweep.add_solo(job.spec, test::app_factory(job.solo_app, job.spec.machine),
                       job.solo_app, job.solo_app);
      }
    }
  }

  const std::vector<RunOutcome>& expected() const { return expected_; }

 private:
  struct JobSpec {
    RunSpec spec;
    std::vector<VmPlan> plans;
    std::string solo_app;  // empty for scenario jobs
  };

  void scenario(const RunSpec& spec, std::vector<VmPlan> plans) {
    expected_.push_back(run_scenario(spec, plans));
    jobs_.push_back({spec, std::move(plans), ""});
  }
  void solo(const RunSpec& spec, const char* app) {
    RunOutcome outcome;
    outcome.vms.push_back(run_solo(spec, test::app_factory(app, spec.machine), app));
    outcome.measured_ticks = spec.measure_ticks;
    expected_.push_back(std::move(outcome));
    jobs_.push_back({spec, {}, app});
  }

  std::vector<JobSpec> jobs_;
  std::vector<RunOutcome> expected_;
};

TEST(SweepRunner, ShardedResultsMatchSerialLoopAtEveryLaneCount) {
  const Batch batch;  // serial oracle, computed once
  for (const int lanes : {1, 2, 4}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    SweepRunner sweep(lanes);
    batch.submit(sweep);
    ASSERT_EQ(sweep.pending(), batch.expected().size());
    const auto results = sweep.run();
    ASSERT_EQ(results.size(), batch.expected().size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(i));
      EXPECT_EQ(results[i], batch.expected()[i]);  // exact, field-for-field
    }
    // Duplicate gcc baselines collapsed: 4 solo requests, 2 simulated.
    EXPECT_EQ(sweep.solo_requests(), 4u);
    EXPECT_EQ(sweep.solo_memo_hits(), 2u);
  }
}

TEST(SweepRunner, SoloIgnoresSchedulerFactorySoTheKeyIsHonest) {
  // The memo key cannot see the scheduler, so add_solo always runs
  // under the default scheduler: a spec carrying a Kyoto factory must
  // produce the same solo outcome (and the same cache entry) as the
  // default spec — no silent cache poisoning either way round.
  const RunSpec spec = test::quick_spec(3, 12);
  RunSpec kyoto_spec = spec;
  kyoto_spec.scheduler = [] { return std::make_unique<core::Ks4Xen>(); };

  SweepRunner sweep(2);
  sweep.add_solo(kyoto_spec, test::app_factory("gcc", spec.machine), "gcc");
  sweep.add_solo(spec, test::app_factory("gcc", spec.machine), "gcc");
  const auto results = sweep.run();
  EXPECT_EQ(sweep.solo_memo_hits(), 1u);  // same key, one simulation
  const RunOutcome expected = [&] {
    RunOutcome outcome;
    outcome.vms.push_back(run_solo(spec, test::app_factory("gcc", spec.machine)));
    outcome.measured_ticks = spec.measure_ticks;
    return outcome;
  }();
  EXPECT_EQ(results.at(0), expected);  // default-scheduler outcome, exactly
  EXPECT_EQ(results.at(1), expected);
}

TEST(SweepRunner, MemoCachePersistsAcrossBatches) {
  SweepRunner sweep(2);
  const RunSpec spec = test::quick_spec(3, 12);
  sweep.add_solo(spec, test::app_factory("gcc", spec.machine), "gcc");
  const auto first = sweep.run();
  EXPECT_EQ(sweep.solo_memo_hits(), 0u);

  sweep.add_solo(spec, test::app_factory("gcc", spec.machine), "gcc");
  const auto second = sweep.run();
  EXPECT_EQ(sweep.solo_memo_hits(), 1u);
  EXPECT_EQ(sweep.solo_requests(), 2u);
  EXPECT_DOUBLE_EQ(sweep.solo_hit_rate(), 0.5);
  EXPECT_EQ(first.at(0), second.at(0));
}

TEST(SweepRunner, MemoKeySeparatesMachinesSeedsAndWindows) {
  const RunSpec base = test::quick_spec(3, 12);
  const std::string key = solo_memo_key(base, "gcc", "solo");
  EXPECT_EQ(key, solo_memo_key(base, "gcc", "solo"));

  RunSpec other = base;
  other.seed = base.seed + 1;
  EXPECT_NE(key, solo_memo_key(other, "gcc", "solo"));
  other = base;
  other.measure_ticks = base.measure_ticks + 1;
  EXPECT_NE(key, solo_memo_key(other, "gcc", "solo"));
  other = base;
  other.machine = test::test_numa_machine();
  EXPECT_NE(key, solo_memo_key(other, "gcc", "solo"));
  EXPECT_NE(key, solo_memo_key(base, "lbm", "solo"));
  EXPECT_NE(key, solo_memo_key(base, "gcc", "other-name"));

  // threads is NOT part of the key: parallel == serial bit-identically
  // (the PR-2 contract), so the outcome cannot depend on it.
  other = base;
  other.threads = 4;
  EXPECT_EQ(key, solo_memo_key(other, "gcc", "solo"));
}

TEST(SweepRunner, ComposesWithPerJobTickThreads) {
  // A job may itself use the per-socket parallel tick engine inside a
  // shard; results still match the fully serial loop.
  RunSpec spec = test::quick_spec(2, 9);
  spec.machine = test::test_numa_machine();  // 2 sockets: threads=2 is real
  const std::vector<VmPlan> plans = {plan_for("gcc", spec, 0, true),
                                     plan_for("lbm", spec, 4, true)};
  const RunOutcome serial = run_scenario(spec, plans);

  RunSpec threaded = spec;
  threaded.threads = 2;
  SweepRunner sweep(2);
  sweep.add(threaded, plans);
  sweep.add(spec, plans);
  const auto results = sweep.run();
  EXPECT_EQ(results.at(0), serial);
  EXPECT_EQ(results.at(1), serial);
}

TEST(SweepRunner, ValidatesJobsAtSubmission) {
  SweepRunner sweep(2);
  const RunSpec spec = test::quick_spec();
  EXPECT_THROW(sweep.add(spec, {}), std::logic_error);
  VmPlan no_cores;
  no_cores.workload = test::app_factory("gcc", spec.machine);
  no_cores.pinned_cores = {};
  EXPECT_THROW(sweep.add(spec, {no_cores}), std::logic_error);
  VmPlan no_workload;
  EXPECT_THROW(sweep.add(spec, {no_workload}), std::logic_error);
  EXPECT_EQ(sweep.pending(), 0u);
}

TEST(SweepRunner, EmptyBatchAndReuse) {
  SweepRunner sweep(4);
  EXPECT_TRUE(sweep.run().empty());
  const RunSpec spec = test::quick_spec(2, 6);
  sweep.add(spec, {plan_for("hmmer", spec, 0, false)});
  EXPECT_EQ(sweep.run().size(), 1u);
  EXPECT_EQ(sweep.pending(), 0u);  // batch cleared after run
}

}  // namespace
}  // namespace kyoto::sim
