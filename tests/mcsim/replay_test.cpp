#include "mcsim/replay.hpp"

#include <gtest/gtest.h>

#include "cache/config.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::mcsim {
namespace {

const cache::MemSystemConfig kMem = cache::scaled_mem_system();
constexpr KHz kFreq = 43'750;

TEST(PinTracer, CapturesExactFutureStream) {
  const auto live = workloads::make_app("gcc", kMem, 5);
  for (int i = 0; i < 1000; ++i) live->next();  // advance the live app
  const auto clone = live->clone();
  const auto trace = PinTracer::capture(*live, 500);
  ASSERT_EQ(trace.size(), 500u);
  // The trace equals the clone's stream...
  for (const auto& op : trace) {
    const auto expect = clone->next();
    ASSERT_EQ(op.addr, expect.addr);
    ASSERT_EQ(static_cast<int>(op.kind), static_cast<int>(expect.kind));
  }
  // ...and capture did not perturb the live workload.
  const auto clone2 = live->clone();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(clone2->next().addr, trace[i].addr);
  }
}

TEST(PinTracer, RejectsEmptyTrace) {
  const auto live = workloads::make_app("gcc", kMem, 5);
  EXPECT_THROW(PinTracer::capture(*live, 0), std::logic_error);
}

TEST(ReplaySimulator, DeterministicForSameInput) {
  const auto live = workloads::make_app("lbm", kMem, 5);
  ReplaySimulator sim(kMem, kFreq);
  const auto a = sim.replay_live(*live, 50'000);
  const auto b = sim.replay_live(*live, 50'000);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.cycles, b.cycles);
  // A quarter of the window is warm-up and not counted.
  EXPECT_EQ(a.instructions, 37'500);
}

TEST(ReplaySimulator, WarmupSuppressesColdLoadBias) {
  // For a cache-resident app the cold-loading burst is the ONLY
  // source of misses; with warm-up discarded the measured intrinsic
  // rate collapses toward its true (near-zero) value.
  const auto gcc = workloads::make_app("gcc", kMem, 5);
  ReplaySimulator no_warmup(kMem, kFreq, 99, 0.0);
  ReplaySimulator with_warmup(kMem, kFreq, 99, 0.5);
  const auto cold = no_warmup.replay_live(*gcc, 150'000);
  const auto warm = with_warmup.replay_live(*gcc, 150'000);
  EXPECT_LT(warm.llc_cap_act(kFreq), cold.llc_cap_act(kFreq) * 0.6);
}

TEST(ReplaySimulator, RejectsBadWarmupFraction) {
  EXPECT_THROW(ReplaySimulator(kMem, kFreq, 99, 1.0), std::logic_error);
  EXPECT_THROW(ReplaySimulator(kMem, kFreq, 99, -0.1), std::logic_error);
}

TEST(ReplaySimulator, StreamingMissesFarMoreThanResident) {
  ReplaySimulator sim(kMem, kFreq);
  const auto lbm = workloads::make_app("lbm", kMem, 5);
  const auto hmmer = workloads::make_app("hmmer", kMem, 5);
  const auto big = sim.replay_live(*lbm, 80'000);
  const auto small = sim.replay_live(*hmmer, 80'000);
  EXPECT_GT(big.llc_cap_act(kFreq), small.llc_cap_act(kFreq) * 10.0 + 1.0);
}

TEST(ReplaySimulator, TraceAndLiveReplayAgree) {
  const auto live = workloads::make_app("mcf", kMem, 7);
  for (int i = 0; i < 500; ++i) live->next();
  ReplaySimulator sim(kMem, kFreq);
  const auto from_live = sim.replay_live(*live, 30'000);
  const auto trace = PinTracer::capture(*live, 30'000);
  const auto from_trace = sim.replay_trace(trace, live->spec());
  EXPECT_EQ(from_live.llc_misses, from_trace.llc_misses);
  EXPECT_EQ(from_live.cycles, from_trace.cycles);
  EXPECT_EQ(from_live.llc_references, from_trace.llc_references);
}

TEST(ReplaySimulator, Equation1Helpers) {
  ReplayResult r;
  r.instructions = 1000;
  r.cycles = 43'750;  // exactly 1 ms at kFreq
  r.llc_misses = 220;
  EXPECT_NEAR(r.llc_cap_act(kFreq), 220.0, 1e-9);
  EXPECT_NEAR(r.ipc(), 1000.0 / 43'750.0, 1e-12);
  ReplayResult empty;
  EXPECT_DOUBLE_EQ(empty.llc_cap_act(kFreq), 0.0);
  EXPECT_DOUBLE_EQ(empty.ipc(), 0.0);
}

TEST(ReplaySimulator, MlpReducesCycles) {
  // Same trace replayed under specs differing only in MLP: higher MLP
  // must yield fewer stall cycles.
  const auto live = workloads::make_app("lbm", kMem, 5);
  const auto trace = PinTracer::capture(*live, 20'000);
  ReplaySimulator sim(kMem, kFreq);
  workloads::WorkloadSpec spec = live->spec();
  spec.mlp = 1.0;
  const auto slow = sim.replay_trace(trace, spec);
  spec.mlp = 4.0;
  const auto fast = sim.replay_trace(trace, spec);
  EXPECT_LT(fast.cycles, slow.cycles);
  EXPECT_EQ(fast.llc_misses, slow.llc_misses);  // same reference stream
}

}  // namespace
}  // namespace kyoto::mcsim
