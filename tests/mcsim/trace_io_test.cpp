#include "mcsim/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cache/config.hpp"
#include "mcsim/replay.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::mcsim {
namespace {

const cache::MemSystemConfig kMem = cache::scaled_mem_system();

TraceFile sample_trace(Instructions n = 5000) {
  const auto live = workloads::make_app("mcf", kMem, 3);
  for (int i = 0; i < 777; ++i) live->next();
  return capture_trace(*live, n);
}

TEST(TraceIo, RoundTripsThroughStream) {
  const TraceFile original = sample_trace();
  std::stringstream buffer;
  save_trace(buffer, original);
  const TraceFile loaded = load_trace(buffer);

  EXPECT_EQ(loaded.spec.name, original.spec.name);
  EXPECT_EQ(loaded.spec.working_set, original.spec.working_set);
  EXPECT_DOUBLE_EQ(loaded.spec.mlp, original.spec.mlp);
  EXPECT_DOUBLE_EQ(loaded.spec.mem_ratio, original.spec.mem_ratio);
  ASSERT_EQ(loaded.ops.size(), original.ops.size());
  for (std::size_t i = 0; i < loaded.ops.size(); ++i) {
    ASSERT_EQ(loaded.ops[i].addr, original.ops[i].addr);
    ASSERT_EQ(static_cast<int>(loaded.ops[i].kind), static_cast<int>(original.ops[i].kind));
  }
}

TEST(TraceIo, ReplayOfLoadedTraceMatchesLiveReplay) {
  const TraceFile trace = sample_trace(20'000);
  std::stringstream buffer;
  save_trace(buffer, trace);
  const TraceFile loaded = load_trace(buffer);

  ReplaySimulator sim(kMem, 43'750);
  const auto a = sim.replay_trace(trace.ops, trace.spec);
  const auto b = sim.replay_trace(loaded.ops, loaded.spec);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOPEnope";
  EXPECT_THROW(load_trace(buffer), std::logic_error);
}

TEST(TraceIo, RejectsTruncation) {
  const TraceFile original = sample_trace(100);
  std::stringstream buffer;
  save_trace(buffer, original);
  const std::string whole = buffer.str();
  for (const std::size_t cut : {whole.size() - 1, whole.size() / 2, std::size_t{6}}) {
    std::stringstream truncated(whole.substr(0, cut));
    EXPECT_THROW(load_trace(truncated), std::logic_error) << "cut at " << cut;
  }
}

TEST(TraceIo, RejectsCorruptOpKind) {
  const TraceFile original = sample_trace(10);
  std::stringstream buffer;
  save_trace(buffer, original);
  std::string bytes = buffer.str();
  // The first op's kind byte sits right after the header; find it by
  // corrupting the whole tail region's kind bytes conservatively:
  // flip the byte at the position of the first op record.
  const std::size_t header =
      4 + 4 + 4 + original.spec.name.size() + 8 + 8 + 8 + 8 + 8 + 8;
  bytes[header] = static_cast<char>(0x7f);
  std::stringstream corrupted(bytes);
  EXPECT_THROW(load_trace(corrupted), std::logic_error);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/kyoto_trace_test.kytr";
  const TraceFile original = sample_trace(1000);
  save_trace_file(path, original);
  const TraceFile loaded = load_trace_file(path);
  EXPECT_EQ(loaded.ops.size(), original.ops.size());
  std::remove(path.c_str());
  EXPECT_THROW(load_trace_file(path), std::logic_error);
}

TEST(TraceIo, CaptureDoesNotPerturbLive) {
  const auto live = workloads::make_app("gcc", kMem, 9);
  const auto reference = live->clone();
  capture_trace(*live, 2000);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(live->next().addr, reference->next().addr);
  }
}

}  // namespace
}  // namespace kyoto::mcsim
