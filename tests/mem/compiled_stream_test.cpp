// Compiled streams (the v2 format) vs their per-op patterns.
//
// Deterministic walks (chase / sequential / strided) compile to the
// *identical* offset sequence — pinned exactly.  Stochastic draws
// (uniform / Zipf) compile to batched draws from the same
// distribution over the same line layout — pinned by two-sample
// chi-square agreement on line frequencies.  Phased composition must
// respect the per-phase access budgets.
#include "mem/compiled_stream.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "mem/patterns.hpp"

namespace kyoto::mem {
namespace {

std::vector<Bytes> pattern_offsets(Pattern& pattern, std::size_t n) {
  Rng rng(0xA5A5);
  std::vector<Bytes> out(n);
  for (auto& offset : out) offset = pattern.next_offset(rng);
  return out;
}

std::vector<Bytes> stream_offsets(CompiledStream& stream, std::size_t n,
                                  std::size_t block = 257) {
  // Deliberately odd block size: exercises cursor wrap handling.
  std::vector<Bytes> out(n);
  std::size_t done = 0;
  while (done < n) {
    const std::size_t take = std::min(block, n - done);
    stream.fill(out.data() + done, take);
    done += take;
  }
  return out;
}

/// Two-sample chi-square statistic over per-line counts, normalized
/// by degrees of freedom (lines with both counts zero are skipped).
/// For equal distributions the expected value is ~1; a generous
/// threshold of 1.5 at >= 100k samples catches any real divergence.
double chi_square_per_dof(const std::vector<Bytes>& a, const std::vector<Bytes>& b,
                          std::uint64_t lines) {
  std::vector<double> ca(lines, 0.0), cb(lines, 0.0);
  for (const Bytes x : a) ca[x / kLineBytes] += 1.0;
  for (const Bytes x : b) cb[x / kLineBytes] += 1.0;
  // Classic two-sample statistic with unequal-size correction.
  const double k1 = std::sqrt(static_cast<double>(b.size()) / static_cast<double>(a.size()));
  const double k2 = 1.0 / k1;
  double stat = 0.0;
  std::uint64_t dof = 0;
  for (std::uint64_t l = 0; l < lines; ++l) {
    const double total = ca[l] + cb[l];
    if (total == 0.0) continue;
    const double d = k1 * ca[l] - k2 * cb[l];
    stat += d * d / total;
    ++dof;
  }
  return dof > 1 ? stat / static_cast<double>(dof - 1) : 0.0;
}

// --- deterministic walks: exact sequence equality ----------------------

TEST(CompiledStream, SequentialIsExactlyThePatternStream) {
  SequentialPattern pattern(100 * kLineBytes);
  const auto compiled = pattern.compile(1);
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(pattern_offsets(pattern, 1000), stream_offsets(*compiled, 1000));
}

TEST(CompiledStream, StridedIsExactlyThePatternStream) {
  for (const std::uint64_t stride : {1ull, 7ull, 13ull, 97ull}) {
    StridedPattern pattern(64 * kLineBytes, stride);
    const auto compiled = pattern.compile(1);
    ASSERT_NE(compiled, nullptr);
    EXPECT_EQ(pattern_offsets(pattern, 1000), stream_offsets(*compiled, 1000)) << stride;
  }
}

TEST(CompiledStream, ChaseRingIsExactlyThePatternStream) {
  PointerChasePattern pattern(300 * kLineBytes, /*seed=*/77);
  const auto compiled = pattern.compile(1);
  ASSERT_NE(compiled, nullptr);
  // Two laps: the ring must wrap exactly like the chase cycle.
  EXPECT_EQ(pattern_offsets(pattern, 650), stream_offsets(*compiled, 650));
}

TEST(CompiledStream, ChaseRingVisitsEveryLineOncePerLap) {
  PointerChasePattern pattern(128 * kLineBytes, 5);
  const auto compiled = pattern.compile(1);
  std::vector<Bytes> lap(128);
  compiled->fill(lap.data(), lap.size());
  std::vector<int> seen(128, 0);
  for (const Bytes offset : lap) ++seen[offset / kLineBytes];
  for (int count : seen) EXPECT_EQ(count, 1);
}

// --- stochastic draws: distributional equality -------------------------

TEST(CompiledStream, UniformMatchesPatternDistribution) {
  const std::uint64_t lines = 256;
  UniformRandomPattern pattern(lines * kLineBytes);
  const auto compiled = pattern.compile(/*seed=*/9);
  const auto a = pattern_offsets(pattern, 200'000);
  const auto b = stream_offsets(*compiled, 200'000);
  EXPECT_LT(chi_square_per_dof(a, b, lines), 1.5);
}

TEST(CompiledStream, ZipfMatchesPatternDistribution) {
  const std::uint64_t lines = 512;
  ZipfPattern pattern(lines * kLineBytes, /*exponent=*/0.9, /*seed=*/3);
  const auto compiled = pattern.compile(/*seed=*/11);
  const auto a = pattern_offsets(pattern, 300'000);
  const auto b = stream_offsets(*compiled, 300'000);
  EXPECT_LT(chi_square_per_dof(a, b, lines), 1.5);
}

TEST(CompiledStream, ZipfQuantileIndexMatchesFullLowerBound) {
  // The stream's quantile-indexed inverse CDF must be the *same
  // function* of the uniform draw as the pattern's full lower_bound:
  // seed the stream and an Rng identically and replay the pattern's
  // mapping on the same draws.
  const std::uint64_t lines = 1000;
  ZipfPattern pattern(lines * kLineBytes, 0.8, 17);
  const std::uint64_t seed = 23;
  const auto compiled = pattern.compile(seed);
  std::vector<Bytes> got(50'000);
  compiled->fill(got.data(), got.size());
  Rng replay(seed);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const Bytes expect = pattern.next_offset(replay);
    ASSERT_EQ(got[i], expect) << i;
  }
}

TEST(CompiledStream, ZipfSharesHotLineLayoutWithPattern) {
  // Hot lines must be the *same* lines in both formats (shared
  // permutation), not merely equally skewed.
  const std::uint64_t lines = 64;
  ZipfPattern pattern(lines * kLineBytes, 1.2, 5);
  const auto compiled = pattern.compile(7);
  std::map<Bytes, int> pat_counts, str_counts;
  for (const Bytes x : pattern_offsets(pattern, 100'000)) ++pat_counts[x];
  for (const Bytes x : stream_offsets(*compiled, 100'000)) ++str_counts[x];
  Bytes pat_hot = 0, str_hot = 0;
  int pat_max = 0, str_max = 0;
  for (const auto& [offset, count] : pat_counts) {
    if (count > pat_max) { pat_max = count; pat_hot = offset; }
  }
  for (const auto& [offset, count] : str_counts) {
    if (count > str_max) { str_max = count; str_hot = offset; }
  }
  EXPECT_EQ(pat_hot, str_hot);
}

// --- phased composition -------------------------------------------------

TEST(CompiledStream, PhasedRespectsPhaseBudgets) {
  // Phase 1: sequential over lines [0, 10); phase 2: sequential over
  // [0, 4).  With budgets 10 and 4 the compiled stream must emit one
  // full lap of each, alternating.
  std::vector<mem::PhasedPattern::Phase> phases;
  phases.push_back({std::make_unique<SequentialPattern>(10 * kLineBytes), 10});
  phases.push_back({std::make_unique<SequentialPattern>(4 * kLineBytes), 4});
  PhasedPattern pattern(std::move(phases));
  const auto compiled = pattern.compile(1);
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(pattern_offsets(pattern, 500), stream_offsets(*compiled, 500, /*block=*/3));
}

// --- value semantics ----------------------------------------------------

TEST(CompiledStream, CloneContinuesIdentically) {
  for (const int kind : {0, 1, 2}) {
    std::unique_ptr<Pattern> pattern;
    if (kind == 0) pattern = std::make_unique<UniformRandomPattern>(64 * kLineBytes);
    if (kind == 1) pattern = std::make_unique<ZipfPattern>(64 * kLineBytes, 0.9, 3);
    if (kind == 2) pattern = std::make_unique<PointerChasePattern>(64 * kLineBytes, 3);
    const auto stream = pattern->compile(5);
    std::vector<Bytes> warm(100);
    stream->fill(warm.data(), warm.size());
    const auto clone = stream->clone();
    std::vector<Bytes> a(500), b(500);
    stream->fill(a.data(), a.size());
    clone->fill(b.data(), b.size());
    EXPECT_EQ(a, b) << "kind " << kind;
  }
}

TEST(CompiledStream, ResetRestartsTheStream) {
  UniformRandomPattern pattern(64 * kLineBytes);
  const auto stream = pattern.compile(5);
  std::vector<Bytes> first(300), again(300);
  stream->fill(first.data(), first.size());
  stream->reset();
  stream->fill(again.data(), again.size());
  EXPECT_EQ(first, again);
}

}  // namespace
}  // namespace kyoto::mem
