#include "mem/patterns.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "mem/access.hpp"

namespace kyoto::mem {
namespace {

constexpr Bytes kWs = 64 * kLineBytes;  // 64 lines

TEST(PointerChase, VisitsEveryLineOncePerLap) {
  PointerChasePattern p(kWs, 1);
  Rng rng(1);
  std::set<Bytes> seen;
  for (int i = 0; i < 64; ++i) seen.insert(p.next_offset(rng));
  EXPECT_EQ(seen.size(), 64u);  // single cycle covers all lines exactly once
  // Second lap repeats the same sequence.
  std::set<Bytes> second;
  for (int i = 0; i < 64; ++i) second.insert(p.next_offset(rng));
  EXPECT_EQ(seen, second);
}

TEST(PointerChase, DifferentSeedsGiveDifferentChains) {
  PointerChasePattern a(kWs, 1);
  PointerChasePattern b(kWs, 2);
  Rng rng(1);
  std::vector<Bytes> seq_a;
  std::vector<Bytes> seq_b;
  for (int i = 0; i < 32; ++i) {
    seq_a.push_back(a.next_offset(rng));
    seq_b.push_back(b.next_offset(rng));
  }
  EXPECT_NE(seq_a, seq_b);
}

TEST(PointerChase, ResetRestartsCycle) {
  PointerChasePattern p(kWs, 3);
  Rng rng(1);
  const Bytes first = p.next_offset(rng);
  p.next_offset(rng);
  p.reset();
  EXPECT_EQ(p.next_offset(rng), first);
}

TEST(PointerChase, TinyWorkingSetIsOneLine) {
  PointerChasePattern p(1, 1);  // rounds up to one line
  Rng rng(1);
  EXPECT_EQ(p.working_set(), kLineBytes);
  EXPECT_EQ(p.next_offset(rng), 0u);
  EXPECT_EQ(p.next_offset(rng), 0u);
}

TEST(Sequential, WalksInOrderAndWraps) {
  SequentialPattern p(3 * kLineBytes);
  Rng rng(1);
  EXPECT_EQ(p.next_offset(rng), 0u * kLineBytes);
  EXPECT_EQ(p.next_offset(rng), 1u * kLineBytes);
  EXPECT_EQ(p.next_offset(rng), 2u * kLineBytes);
  EXPECT_EQ(p.next_offset(rng), 0u * kLineBytes);
}

TEST(Strided, CoversAllLines) {
  StridedPattern p(kWs, 7);
  Rng rng(1);
  std::set<Bytes> seen;
  for (int i = 0; i < 64; ++i) seen.insert(p.next_offset(rng));
  // Stride coprime with line count => full coverage.
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Strided, NonCoprimeStrideIsAdjusted) {
  // 64 lines, requested stride 8 shares a factor; the pattern adjusts
  // it so coverage is still complete.
  StridedPattern p(kWs, 8);
  Rng rng(1);
  std::set<Bytes> seen;
  for (int i = 0; i < 64; ++i) seen.insert(p.next_offset(rng));
  EXPECT_EQ(seen.size(), 64u);
}

TEST(UniformRandom, StaysInWorkingSet) {
  UniformRandomPattern p(kWs);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Bytes off = p.next_offset(rng);
    EXPECT_LT(off, kWs);
    EXPECT_EQ(off % kLineBytes, 0u);
  }
}

TEST(UniformRandom, TouchesMostLines) {
  UniformRandomPattern p(kWs);
  Rng rng(1);
  std::set<Bytes> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(p.next_offset(rng));
  EXPECT_GT(seen.size(), 60u);
}

TEST(Zipf, SkewsTowardHotLines) {
  ZipfPattern p(256 * kLineBytes, 1.0, 5);
  Rng rng(1);
  std::map<Bytes, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[p.next_offset(rng)]++;
  // The hottest line should receive far more than the uniform share.
  int hottest = 0;
  for (const auto& [off, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, n / 256 * 10);
}

TEST(Zipf, ZeroExponentIsUniformish) {
  ZipfPattern p(64 * kLineBytes, 0.0, 5);
  Rng rng(1);
  std::map<Bytes, int> counts;
  const int n = 64 * 500;
  for (int i = 0; i < n; ++i) counts[p.next_offset(rng)]++;
  EXPECT_EQ(counts.size(), 64u);
  for (const auto& [off, c] : counts) {
    EXPECT_NEAR(c, 500, 150);  // within 30% of the uniform share
  }
}

TEST(Phased, SwitchesBetweenPhases) {
  std::vector<PhasedPattern::Phase> phases;
  phases.push_back({std::make_unique<SequentialPattern>(2 * kLineBytes), 4});
  phases.push_back({std::make_unique<SequentialPattern>(8 * kLineBytes), 4});
  PhasedPattern p(std::move(phases));
  Rng rng(1);
  // Phase 1: offsets within 2 lines.
  for (int i = 0; i < 4; ++i) EXPECT_LT(p.next_offset(rng), 2 * kLineBytes);
  // Phase 2 can reach beyond.
  Bytes max_seen = 0;
  for (int i = 0; i < 4; ++i) max_seen = std::max(max_seen, p.next_offset(rng));
  EXPECT_GE(max_seen, 2 * kLineBytes);
}

TEST(Phased, WorkingSetIsMaxOfPhases) {
  std::vector<PhasedPattern::Phase> phases;
  phases.push_back({std::make_unique<SequentialPattern>(2 * kLineBytes), 1});
  phases.push_back({std::make_unique<SequentialPattern>(16 * kLineBytes), 1});
  PhasedPattern p(std::move(phases));
  EXPECT_EQ(p.working_set(), 16 * kLineBytes);
}

TEST(Phased, RejectsEmptyAndNull) {
  EXPECT_THROW(PhasedPattern(std::vector<PhasedPattern::Phase>{}), std::logic_error);
  std::vector<PhasedPattern::Phase> bad;
  bad.push_back({nullptr, 4});
  EXPECT_THROW(PhasedPattern(std::move(bad)), std::logic_error);
}

// ---------------------------------------------------------------------
// Property: clone() preserves the future stream for every pattern type.
// This is the invariant the McSim "pin tool" relies on.
// ---------------------------------------------------------------------

class PatternFactory {
 public:
  virtual ~PatternFactory() = default;
  virtual std::unique_ptr<Pattern> make() const = 0;
  virtual std::string name() const = 0;
};

using FactoryFn = std::unique_ptr<Pattern> (*)();

struct CloneCase {
  const char* name;
  FactoryFn make;
};

std::unique_ptr<Pattern> make_chase() {
  return std::make_unique<PointerChasePattern>(kWs, 11);
}
std::unique_ptr<Pattern> make_seq() { return std::make_unique<SequentialPattern>(kWs); }
std::unique_ptr<Pattern> make_strided() { return std::make_unique<StridedPattern>(kWs, 5); }
std::unique_ptr<Pattern> make_random() {
  return std::make_unique<UniformRandomPattern>(kWs);
}
std::unique_ptr<Pattern> make_zipf() {
  return std::make_unique<ZipfPattern>(kWs, 0.9, 11);
}
std::unique_ptr<Pattern> make_phased() {
  std::vector<PhasedPattern::Phase> phases;
  phases.push_back({std::make_unique<SequentialPattern>(kWs / 2), 5});
  phases.push_back({std::make_unique<PointerChasePattern>(kWs, 3), 7});
  return std::make_unique<PhasedPattern>(std::move(phases));
}

class PatternCloneTest : public ::testing::TestWithParam<CloneCase> {};

TEST_P(PatternCloneTest, CloneContinuesIdentically) {
  auto original = GetParam().make();
  // Note: stochastic patterns draw from the caller's RNG, so the
  // clone equivalence holds when both sides consume identical RNG
  // streams — which is how the replay simulator uses them.
  Rng rng_a(77);
  for (int i = 0; i < 23; ++i) original->next_offset(rng_a);

  auto clone = original->clone();
  Rng rng_b = rng_a;  // clone the RNG too
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(original->next_offset(rng_a), clone->next_offset(rng_b))
        << GetParam().name << " diverged at step " << i;
  }
}

TEST_P(PatternCloneTest, ResetRestartsDeterministically) {
  auto p = GetParam().make();
  Rng rng1(5);
  std::vector<Bytes> first;
  for (int i = 0; i < 50; ++i) first.push_back(p->next_offset(rng1));
  p->reset();
  Rng rng2(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p->next_offset(rng2), first[static_cast<std::size_t>(i)])
        << GetParam().name << " not reset-deterministic at step " << i;
  }
}

TEST_P(PatternCloneTest, OffsetsLineAlignedAndInRange) {
  auto p = GetParam().make();
  Rng rng(6);
  const Bytes ws = p->working_set();
  for (int i = 0; i < 500; ++i) {
    const Bytes off = p->next_offset(rng);
    ASSERT_LT(off, ws);
    ASSERT_EQ(off % kLineBytes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternCloneTest,
                         ::testing::Values(CloneCase{"chase", &make_chase},
                                           CloneCase{"sequential", &make_seq},
                                           CloneCase{"strided", &make_strided},
                                           CloneCase{"random", &make_random},
                                           CloneCase{"zipf", &make_zipf},
                                           CloneCase{"phased", &make_phased}),
                         [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace kyoto::mem
