#include "mem/address_space.hpp"

#include <gtest/gtest.h>

namespace kyoto::mem {
namespace {

TEST(AddressSpace, RegionsOfDifferentVmsAreDisjoint) {
  const Bytes size = 64_MiB;
  for (int a = 0; a < 8; ++a) {
    AddressSpace sa(a, size);
    for (int b = a + 1; b < 8; ++b) {
      AddressSpace sb(b, size);
      EXPECT_FALSE(sa.contains(sb.base()));
      EXPECT_FALSE(sa.contains(sb.base() + size - 1));
      EXPECT_FALSE(sb.contains(sa.base()));
    }
  }
}

TEST(AddressSpace, TranslateIsBaseRelative) {
  AddressSpace s(3, 1_MiB);
  EXPECT_EQ(s.translate(0), s.base());
  EXPECT_EQ(s.translate(4096), s.base() + 4096);
  EXPECT_TRUE(s.contains(s.translate(1_MiB - 1)));
}

TEST(AddressSpace, HomeNodeRoundTrips) {
  AddressSpace s(0, 1_MiB, 1);
  EXPECT_EQ(s.home_node(), 1);
  s.set_home_node(0);
  EXPECT_EQ(s.home_node(), 0);
}

TEST(AddressSpace, EmptySpaceRejected) {
  EXPECT_THROW(AddressSpace(0, 0), std::logic_error);
}

TEST(AddressSpace, BasesAreLineAlignedButPhased) {
  // Different VMs should not map to identical set sequences: their
  // bases differ by a non-multiple of typical set strides.
  AddressSpace a(0, 1_MiB);
  AddressSpace b(1, 1_MiB);
  EXPECT_NE((a.base() / kLineBytes) % 512, (b.base() / kLineBytes) % 512);
}

}  // namespace
}  // namespace kyoto::mem
