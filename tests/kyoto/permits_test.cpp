#include "kyoto/permits.hpp"

#include <gtest/gtest.h>

#include "kyoto/ks4xen.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::core {
namespace {

TEST(PermitCatalog, AwsLikeMenuHasSixTypes) {
  const auto catalog = PermitCatalog::aws_like(10.0, 1024 * 1024);
  EXPECT_EQ(catalog.types().size(), 6u);
  EXPECT_NO_THROW(catalog.lookup("m3.medium"));
  EXPECT_NO_THROW(catalog.lookup("r3.large"));
  EXPECT_THROW(catalog.lookup("z9.mega"), std::logic_error);
}

TEST(PermitCatalog, PermitProportionalToMemory) {
  const auto catalog = PermitCatalog::aws_like(10.0, 1024 * 1024);
  const auto& c3 = catalog.lookup("c3.medium");
  const auto& m3 = catalog.lookup("m3.medium");
  const auto& r3 = catalog.lookup("r3.medium");
  // §5: "R3's instances will be assigned much more llc_cap than C3's
  // instances".
  EXPECT_LT(c3.llc_cap, m3.llc_cap);
  EXPECT_LT(m3.llc_cap, r3.llc_cap);
  EXPECT_NEAR(r3.llc_cap / c3.llc_cap, 8.0, 1e-9);
  // Proportionality constant.
  EXPECT_NEAR(m3.llc_cap, 10.0 * (static_cast<double>(m3.memory) / (1024.0 * 1024.0)),
              1e-9);
}

TEST(PermitCatalog, VmConfigCarriesPermit) {
  const auto catalog = PermitCatalog::aws_like(10.0, 1024 * 1024);
  const auto config = catalog.vm_config("r3.medium", "db-1");
  EXPECT_EQ(config.name, "db-1");
  EXPECT_DOUBLE_EQ(config.llc_cap, catalog.lookup("r3.medium").llc_cap);
  EXPECT_EQ(config.memory, catalog.lookup("r3.medium").memory);
}

TEST(PermitCatalog, AddReplacesByName) {
  PermitCatalog catalog;
  catalog.add(InstanceType{"x", 1, 100, 256, 5.0});
  catalog.add(InstanceType{"x", 2, 200, 256, 9.0});
  EXPECT_EQ(catalog.types().size(), 1u);
  EXPECT_EQ(catalog.lookup("x").vcpus, 2);
}

TEST(PermitCatalog, ValidatesInput) {
  EXPECT_THROW(PermitCatalog::aws_like(0.0, 1024), std::logic_error);
  PermitCatalog catalog;
  EXPECT_THROW(catalog.add(InstanceType{"", 1, 1, 1, 1.0}), std::logic_error);
  EXPECT_THROW(catalog.add(InstanceType{"y", 0, 1, 1, 1.0}), std::logic_error);
}

TEST(Billing, ReportCoversEveryVmAndRendersTable) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  const auto mem = test::test_machine().mem;
  hv::VmConfig sen{.name = "tenant-a"};
  sen.llc_cap = 500.0;
  sen.loop_workload = true;
  hv.create_vm(sen, workloads::make_app("gcc", mem, 1), 0);
  hv::VmConfig dis{.name = "tenant-b"};
  dis.llc_cap = 20.0;
  dis.loop_workload = true;
  hv.create_vm(dis, workloads::make_app("lbm", mem, 2), 1);
  hv.run_ticks(30);

  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  const auto lines = billing_report(hv, ctl);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].vm, "tenant-a");
  EXPECT_EQ(lines[1].vm, "tenant-b");
  EXPECT_GT(lines[1].punished_ticks, 0);
  EXPECT_EQ(lines[0].punish_events, 0);

  const std::string table = format_billing_report(lines);
  EXPECT_NE(table.find("tenant-a"), std::string::npos);
  EXPECT_NE(table.find("PUNISHED"), std::string::npos);
}

}  // namespace
}  // namespace kyoto::core
