#include "kyoto/pricing.hpp"

#include <gtest/gtest.h>

namespace kyoto::core {
namespace {

BillingLine line(const char* vm, double booked, double attributed) {
  BillingLine b;
  b.vm = vm;
  b.booked_cap = booked;
  b.attributed_misses = attributed;
  return b;
}

TEST(Pricing, WithinPermitPaysFlatFeeOnly) {
  PriceSheet prices;
  prices.permit_fee_per_unit_second = 0.01;
  prices.overage_per_million_misses = 5.0;
  // 100 miss/ms permit over 2000 ms => 200k permitted; attributed 150k.
  const auto invoices = make_invoices({line("a", 100.0, 150'000.0)}, prices, 2000.0);
  ASSERT_EQ(invoices.size(), 1u);
  EXPECT_DOUBLE_EQ(invoices[0].permit_fee, 100.0 * 0.01 * 2.0);
  EXPECT_DOUBLE_EQ(invoices[0].overage_misses, 0.0);
  EXPECT_DOUBLE_EQ(invoices[0].overage_fee, 0.0);
  EXPECT_DOUBLE_EQ(invoices[0].total, invoices[0].permit_fee);
}

TEST(Pricing, OverageChargedBeyondPermittedBudget) {
  PriceSheet prices;
  prices.permit_fee_per_unit_second = 0.0;
  prices.overage_per_million_misses = 10.0;
  // 10 miss/ms over 1000 ms => 10k permitted; attributed 1.01M.
  const auto invoices = make_invoices({line("noisy", 10.0, 1'010'000.0)}, prices, 1000.0);
  EXPECT_DOUBLE_EQ(invoices[0].overage_misses, 1'000'000.0);
  EXPECT_DOUBLE_EQ(invoices[0].overage_fee, 10.0);
  EXPECT_DOUBLE_EQ(invoices[0].total, 10.0);
}

TEST(Pricing, BiggerPermitCostsMoreButAbsorbsOverage) {
  PriceSheet prices;
  prices.permit_fee_per_unit_second = 0.001;
  prices.overage_per_million_misses = 100.0;
  const double attributed = 500'000.0;
  const auto small = make_invoices({line("small", 10.0, attributed)}, prices, 1000.0);
  const auto big = make_invoices({line("big", 1000.0, attributed)}, prices, 1000.0);
  EXPECT_GT(big[0].permit_fee, small[0].permit_fee);
  EXPECT_GT(small[0].overage_fee, 0.0);
  EXPECT_DOUBLE_EQ(big[0].overage_fee, 0.0);
  // For this pollution level the big permit is the better deal —
  // the pricing makes honest booking rational.
  EXPECT_LT(big[0].total, small[0].total);
}

TEST(Pricing, UnbookedVmHasNoPermitCostOnlyOverage) {
  PriceSheet prices;
  const auto invoices = make_invoices({line("free", 0.0, 2'000'000.0)}, prices, 1000.0);
  EXPECT_DOUBLE_EQ(invoices[0].permit_fee, 0.0);
  EXPECT_DOUBLE_EQ(invoices[0].overage_misses, 2'000'000.0);
}

TEST(Pricing, ValidatesInputs) {
  EXPECT_THROW(make_invoices({}, PriceSheet{}, 0.0), std::logic_error);
  PriceSheet negative;
  negative.overage_per_million_misses = -1.0;
  EXPECT_THROW(make_invoices({}, negative, 1000.0), std::logic_error);
}

TEST(Pricing, FormatsTable) {
  PriceSheet prices;
  const auto invoices =
      make_invoices({line("a", 10.0, 5'000.0), line("b", 0.0, 9'000'000.0)}, prices, 1000.0);
  const std::string table = format_invoices(invoices, prices);
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("credits"), std::string::npos);
  EXPECT_NE(table.find("9,000,000"), std::string::npos);
}

}  // namespace
}  // namespace kyoto::core
