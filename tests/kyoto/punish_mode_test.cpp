// Punish semantics: hard blocking (Fig 5's "deprived of the
// processor") vs the paper's literal "priority OVER" demotion, which
// is work conserving — a punished VM may still scavenge cycles no one
// else wants.
#include <gtest/gtest.h>

#include <memory>

#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4xen.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::core {
namespace {

std::unique_ptr<workloads::Workload> app(const char* name, std::uint64_t seed = 1) {
  return workloads::make_app(name, test::test_machine().mem, seed);
}

hv::VmConfig booked(const char* name, double cap) {
  hv::VmConfig c{.name = name};
  c.llc_cap = cap;
  c.loop_workload = true;
  return c;
}

KyotoParams demote_params() {
  KyotoParams p;
  p.punish_mode = PunishMode::kDemote;
  return p;
}

TEST(PunishMode, Names) {
  EXPECT_STREQ(punish_mode_name(PunishMode::kBlock), "block");
  EXPECT_STREQ(punish_mode_name(PunishMode::kDemote), "demote");
}

TEST(PunishMode, BlockStarvesPunishedVmOnIdleCore) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  hv::Vm& vm = hv.create_vm(booked("lbm", 1.0), app("lbm"), 0);
  hv.run_ticks(60);
  // Core 0 has nothing else to do, yet the punished VM may not run.
  EXPECT_LT(hv.sched_ticks(vm.vcpu(0)), 12);
  EXPECT_GT(hv.idle_ticks(0), 45);
}

TEST(PunishMode, DemoteLetsPunishedVmScavengeIdleCycles) {
  hv::Hypervisor hv(test::test_machine(),
                    std::make_unique<Ks4Xen>(std::make_unique<DirectPmcMonitor>(),
                                             demote_params()));
  hv::Vm& vm = hv.create_vm(booked("lbm", 1.0), app("lbm"), 0);
  hv.run_ticks(60);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  // Still formally punished (quota deeply negative)...
  EXPECT_TRUE(ctl.state(vm).punished);
  EXPECT_GT(ctl.state(vm).punished_ticks, 30);
  // ...but work conservation lets it use the otherwise idle core.
  EXPECT_GT(hv.sched_ticks(vm.vcpu(0)), 50);
  EXPECT_LT(hv.idle_ticks(0), 10);
}

TEST(PunishMode, DemoteStillProtectsContendedVictim) {
  // With a competitor on the same core, demotion = effectively no CPU
  // for the punished VM; the victim sharing the LLC stays protected.
  hv::Hypervisor hv(test::test_machine(),
                    std::make_unique<Ks4Xen>(std::make_unique<DirectPmcMonitor>(),
                                             demote_params()));
  hv::Vm& dis = hv.create_vm(booked("lbm", 1.0), app("lbm", 1), 0);
  hv::Vm& competitor = hv.create_vm(booked("povray", 0.0), app("povray", 2), 0);
  hv.run_ticks(90);
  // The unpunished competitor takes (almost) the whole core.
  EXPECT_GT(hv.sched_ticks(competitor.vcpu(0)), 80);
  EXPECT_LT(hv.sched_ticks(dis.vcpu(0)), 10);
}

TEST(PunishMode, DemoteWorksUnderCfsToo) {
  hv::Hypervisor hv(test::test_machine(),
                    std::make_unique<Ks4Linux>(std::make_unique<DirectPmcMonitor>(),
                                               demote_params()));
  hv::Vm& dis = hv.create_vm(booked("lbm", 1.0), app("lbm", 1), 0);
  hv::Vm& competitor = hv.create_vm(booked("gcc", 0.0), app("gcc", 2), 0);
  hv.run_ticks(90);
  EXPECT_GT(hv.sched_ticks(competitor.vcpu(0)), 75);
  EXPECT_LT(hv.sched_ticks(dis.vcpu(0)), 15);
}

TEST(PunishMode, BlockedVsDemotedThroughputOrdering) {
  // On an idle machine the demoted polluter retires more instructions
  // than the blocked one — demotion is the gentler sentence.
  auto run = [&](KyotoParams params) {
    hv::Hypervisor hv(test::test_machine(),
                      std::make_unique<Ks4Xen>(std::make_unique<DirectPmcMonitor>(),
                                               params));
    hv::Vm& vm = hv.create_vm(booked("lbm", 1.0), app("lbm"), 0);
    hv.run_ticks(60);
    return vm.vcpu(0).retired_total();
  };
  const auto blocked = run(KyotoParams{});
  const auto demoted = run(demote_params());
  EXPECT_GT(demoted, blocked * 3);
}

}  // namespace
}  // namespace kyoto::core
