#include "kyoto/monitor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hv/credit_scheduler.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::core {
namespace {

std::unique_ptr<workloads::Workload> app(const char* name, std::uint64_t seed = 1) {
  return workloads::make_app(name, test::test_machine().mem, seed);
}

hv::VmConfig looping(const char* name, double cap = 0.0) {
  hv::VmConfig c{.name = name};
  c.loop_workload = true;
  c.llc_cap = cap;
  return c;
}

/// Intrinsic (solo) pollution rate of an app, measured directly.
double solo_rate(const char* name) {
  sim::RunSpec spec = test::quick_spec(6, 30);
  return sim::run_solo(spec, test::app_factory(name, spec.machine), name).llc_cap_act;
}

TEST(DirectMonitor, MatchesEquation1OnDelta) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  hv::Vm& vm = hv.create_vm(looping("lbm"), app("lbm"), 0);
  hv.run_ticks(6);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  // lbm misses the LLC heavily: direct rate must be clearly nonzero.
  EXPECT_GT(ctl.state(vm).last_rate, 50.0);
}

TEST(DirectMonitor, ContaminatedUnderContention) {
  // The attribution problem the paper describes: a victim's *direct*
  // miss rate inflates when a polluter shares the LLC.
  sim::RunSpec spec = test::quick_spec(6, 30);
  const auto gcc = test::app_factory("gcc", spec.machine);
  const auto solo = sim::run_solo(spec, gcc, "gcc");

  sim::VmPlan sen;
  sen.config.name = "gcc";
  sen.workload = gcc;
  sen.pinned_cores = {0};
  sim::VmPlan dis;
  dis.config.name = "lbm";
  dis.config.loop_workload = true;
  dis.workload = test::app_factory("lbm", spec.machine);
  dis.pinned_cores = {1};
  const auto contended = sim::run_scenario(spec, {sen, dis});
  EXPECT_GT(contended.vms[0].llc_cap_act, solo.llc_cap_act * 3.0 + 3.0);
}

TEST(McSimMonitor, ReturnsIntrinsicRateUnderContention) {
  // The replay monitor must report (approximately) the solo rate for
  // the victim even while it is being polluted — the property that
  // makes it a correct attribution strategy.
  const double gcc_solo = solo_rate("gcc");
  const double lbm_solo = solo_rate("lbm");

  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>(
                                              std::make_unique<McSimMonitor>()));
  hv::Vm& sen = hv.create_vm(looping("gcc"), app("gcc", 1), 0);
  hv::Vm& dis = hv.create_vm(looping("lbm"), app("lbm", 2), 1);
  hv.run_ticks(40);
  auto& ks = static_cast<Ks4Xen&>(hv.scheduler());
  auto& monitor = static_cast<McSimMonitor&>(ks.kyoto().monitor());

  const double gcc_measured = monitor.cached_rate(sen.id());
  const double lbm_measured = monitor.cached_rate(dis.id());
  ASSERT_GE(gcc_measured, 0.0);
  ASSERT_GE(lbm_measured, 0.0);
  // gcc's intrinsic rate is tiny; the replay must NOT blame it for
  // lbm's pollution.  Allow cold-replay inflation but require it to
  // stay an order of magnitude below the polluter's rate.
  EXPECT_LT(gcc_measured, lbm_measured / 10.0);
  EXPECT_NEAR(lbm_measured, lbm_solo, lbm_solo * 0.5);
  (void)gcc_solo;
}

TEST(McSimMonitor, ReplayDoesNotPerturbLiveWorkload) {
  hv::Hypervisor hv(test::test_machine(),
                    std::make_unique<Ks4Xen>(std::make_unique<McSimMonitor>()));
  hv::Vm& vm = hv.create_vm(looping("gcc"), app("gcc"), 0);
  hv.run_ticks(35);  // crosses a sampling boundary (period 30)
  // The VM kept running and retiring instructions every tick.
  EXPECT_EQ(hv.sched_ticks(vm.vcpu(0)), 35);
  EXPECT_GT(vm.vcpu(0).retired_total(), 0);
}

TEST(McSimMonitor, RejectsBadParams) {
  EXPECT_THROW(McSimMonitor(McSimMonitor::Params{0, 100}), std::logic_error);
  EXPECT_THROW(McSimMonitor(McSimMonitor::Params{10, 0}), std::logic_error);
}

TEST(SocketDedication, RequiresMultiSocketMachine) {
  EXPECT_THROW(hv::Hypervisor(test::test_machine(),
                              std::make_unique<Ks4Xen>(
                                  std::make_unique<SocketDedicationMonitor>())),
               std::logic_error);
}

TEST(SocketDedication, IsolatesAndReturnsCorunners) {
  hv::Hypervisor hv(test::test_numa_machine(),
                    std::make_unique<Ks4Xen>(std::make_unique<SocketDedicationMonitor>()));
  hv::Vm& sen = hv.create_vm(looping("gcc"), app("gcc", 1), 0);
  hv::Vm& dis = hv.create_vm(looping("lbm"), app("lbm", 2), 1);
  hv.run_ticks(80);
  auto& ks = static_cast<Ks4Xen&>(hv.scheduler());
  auto& monitor = static_cast<SocketDedicationMonitor&>(ks.kyoto().monitor());
  // Let any in-flight campaign step finish before asserting.
  hv.run_until([&] { return !monitor.campaign_active(); }, 40);
  EXPECT_GE(monitor.isolations_performed(), 2);
  // Migrations come in pairs (out and back).
  EXPECT_EQ(monitor.migrations_performed() % 2, 0);
  EXPECT_GE(monitor.migrations_performed(), monitor.isolations_performed() * 2);
  // After the campaign everyone is back on socket 0.
  EXPECT_LT(sen.vcpu(0).pinned_core(), 4);
  EXPECT_LT(dis.vcpu(0).pinned_core(), 4);
}

TEST(SocketDedication, MeasuresIntrinsicRateForVictim) {
  hv::Hypervisor hv(test::test_numa_machine(),
                    std::make_unique<Ks4Xen>(std::make_unique<SocketDedicationMonitor>()));
  hv::Vm& sen = hv.create_vm(looping("gcc"), app("gcc", 1), 0);
  hv.create_vm(looping("lbm"), app("lbm", 2), 1);
  hv.run_ticks(100);
  auto& ks = static_cast<Ks4Xen&>(hv.scheduler());
  auto& monitor = static_cast<SocketDedicationMonitor&>(ks.kyoto().monitor());
  const double gcc_dedicated = monitor.cached_rate(sen.id());
  ASSERT_GE(gcc_dedicated, 0.0);
  // Dedicated measurement is far below gcc's contaminated direct rate
  // under lbm pollution (which is tens of misses/ms).
  const double gcc_solo = solo_rate("gcc");
  EXPECT_LT(gcc_dedicated, gcc_solo + 12.0);
}

TEST(SocketDedication, SkipsQuietVms) {
  SocketDedicationMonitor::Params params;
  params.sample_period_ticks = 6;
  hv::Hypervisor hv(
      test::test_numa_machine(),
      std::make_unique<Ks4Xen>(std::make_unique<SocketDedicationMonitor>(params)));
  // hmmer and povray are both ILC-resident: every campaign step hits
  // skip heuristic 1 — no isolation at all (Fig 10's point).
  hv.create_vm(looping("hmmer"), app("hmmer", 1), 0);
  hv.create_vm(looping("povray"), app("povray", 2), 1);
  hv.run_ticks(80);
  auto& ks = static_cast<Ks4Xen&>(hv.scheduler());
  auto& monitor = static_cast<SocketDedicationMonitor&>(ks.kyoto().monitor());
  EXPECT_EQ(monitor.isolations_performed(), 0);
  EXPECT_GE(monitor.isolations_skipped(), 5);
}

TEST(SocketDedication, QuietCorunnersSkipIsolation) {
  SocketDedicationMonitor::Params params;
  params.sample_period_ticks = 6;
  hv::Hypervisor hv(
      test::test_numa_machine(),
      std::make_unique<Ks4Xen>(std::make_unique<SocketDedicationMonitor>(params)));
  // bzip colocated only with hmmer instances (all quiet): heuristic 2
  // avoids isolating bzip even though bzip itself is above threshold?
  // bzip's own rate is low too, so count total skips instead.
  hv.create_vm(looping("bzip"), app("bzip", 1), 0);
  hv.create_vm(looping("hmmer"), app("hmmer", 2), 1);
  hv.create_vm(looping("hmmer2"), app("hmmer", 3), 2);
  hv.run_ticks(80);
  auto& ks = static_cast<Ks4Xen&>(hv.scheduler());
  auto& monitor = static_cast<SocketDedicationMonitor&>(ks.kyoto().monitor());
  EXPECT_EQ(monitor.isolations_performed(), 0);
  EXPECT_GE(monitor.isolations_skipped(), 5);
}

TEST(SocketDedication, RejectsBadParams) {
  EXPECT_THROW(SocketDedicationMonitor(SocketDedicationMonitor::Params{
                   .sample_period_ticks = 0}),
               std::logic_error);
}

}  // namespace
}  // namespace kyoto::core
