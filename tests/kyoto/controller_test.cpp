#include "kyoto/controller.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "kyoto/ks4xen.hpp"
#include "kyoto/pollution.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::core {
namespace {

std::unique_ptr<workloads::Workload> app(const char* name, std::uint64_t seed = 1) {
  return workloads::make_app(name, test::test_machine().mem, seed);
}

hv::VmConfig booked(const char* name, double llc_cap, bool loop = true) {
  hv::VmConfig c{.name = name};
  c.llc_cap = llc_cap;
  c.loop_workload = loop;
  return c;
}

TEST(Equation1, MatchesPaperFormula) {
  // 1000 misses over 2.8e6 cycles at 2.8 GHz (2.8e6 kHz): the VM ran
  // 1 ms, so the rate is 1000 misses/ms.
  EXPECT_DOUBLE_EQ(equation1(1000, 2'800'000, 2'800'000), 1000.0);
  EXPECT_DOUBLE_EQ(equation1(0, 2'800'000, 1'000'000), 0.0);
  EXPECT_DOUBLE_EQ(equation1(500, 2'800'000, 0), 0.0);  // no cycles
}

TEST(Equation1, CounterSetOverload) {
  pmc::CounterSet delta;
  delta.set(pmc::Counter::kLlcMisses, 100);
  delta.set(pmc::Counter::kUnhaltedCycles, 43'750);  // 1 ms at scaled freq
  EXPECT_NEAR(equation1(delta, 43'750), 100.0, 1e-9);
}

TEST(Controller, RejectsBadConstruction) {
  EXPECT_THROW(PollutionController(nullptr, KyotoParams{}), std::logic_error);
  EXPECT_THROW(PollutionController(std::make_unique<DirectPmcMonitor>(),
                                   KyotoParams{.bank_slices = 0.0}),
               std::logic_error);
}

TEST(Controller, UnbookedVmIsNeverPunished) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  hv::Vm& vm = hv.create_vm(booked("lbm", /*llc_cap=*/0.0), app("lbm"), 0);
  hv.run_ticks(30);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  EXPECT_EQ(ctl.state(vm).punish_events, 0);
  EXPECT_TRUE(ctl.allows(vm));
  EXPECT_EQ(hv.sched_ticks(vm.vcpu(0)), 30);
}

TEST(Controller, HeavyPolluterWithTinyPermitIsPunished) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  hv::Vm& vm = hv.create_vm(booked("lbm", 1.0), app("lbm"), 0);
  hv.run_ticks(30);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  EXPECT_GE(ctl.state(vm).punish_events, 1);
  EXPECT_GT(ctl.state(vm).punished_ticks, 15);
  EXPECT_LT(hv.sched_ticks(vm.vcpu(0)), 10);
}

TEST(Controller, QuotaDebitEqualsMeasuredMissesWithDirectMonitor) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  // Huge permit so the VM never gets punished and keeps running.
  hv::Vm& vm = hv.create_vm(booked("lbm", 1e9), app("lbm"), 0);
  hv.run_ticks(9);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  const double debited = ctl.state(vm).debited_total;
  const double misses =
      static_cast<double>(vm.counters().get(pmc::Counter::kLlcMisses));
  // rate × on-CPU ms == misses exactly (up to fp rounding).
  EXPECT_NEAR(debited, misses, misses * 1e-9 + 1e-6);
}

TEST(Controller, QuotaRecoversAndPunishmentLifts) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  // Permit roughly an order below lbm's rate: punish, starve, recover,
  // run again — the Fig 5 duty cycle.
  hv::Vm& vm = hv.create_vm(booked("lbm", 60.0), app("lbm"), 0);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  hv.run_ticks(200);
  EXPECT_GE(ctl.state(vm).punish_events, 2);  // punished more than once => recovered between
  const auto sched = hv.sched_ticks(vm.vcpu(0));
  EXPECT_GT(sched, 2);    // it does run sometimes
  EXPECT_LT(sched, 150);  // but far from always
}

TEST(Controller, BankClampLimitsSavedQuota) {
  KyotoParams params;
  params.bank_slices = 1.0;
  params.initial_bank_slices = 1.0;
  hv::Hypervisor hv(test::test_machine(),
                    std::make_unique<Ks4Xen>(std::make_unique<DirectPmcMonitor>(), params));
  // hmmer is ILC-resident: it pollutes ~nothing and banks quota every
  // slice — the clamp must hold the bank at bank_slices of earning.
  hv::Vm& vm = hv.create_vm(booked("hmmer", 100.0), app("hmmer"), 0);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  hv.run_ticks(60);
  const double slice_earn = 100.0 * kTickMs * kTicksPerSlice;
  EXPECT_LE(ctl.state(vm).quota, slice_earn * 1.0 + 1e-9);
}

TEST(Controller, InitialBankGivesStartupGrace) {
  // With the default parameters, a VM booked near its steady rate is
  // NOT punished for its one-off data-loading burst...
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  hv::Vm& vm = hv.create_vm(booked("gcc", 15.0), app("gcc"), 0);
  hv.run_ticks(12);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  EXPECT_EQ(ctl.state(vm).punish_events, 0);

  // ...but with a 1-slice initial bank the same burst punishes it.
  KyotoParams strict;
  strict.initial_bank_slices = 0.1;
  strict.bank_slices = 0.1;
  hv::Hypervisor hv2(test::test_machine(),
                     std::make_unique<Ks4Xen>(std::make_unique<DirectPmcMonitor>(), strict));
  hv::Vm& vm2 = hv2.create_vm(booked("gcc", 15.0), app("gcc"), 0);
  hv2.run_ticks(12);
  const auto& ctl2 = static_cast<Ks4Xen&>(hv2.scheduler()).kyoto();
  EXPECT_GE(ctl2.state(vm2).punish_events, 1);
}

TEST(Controller, StateOfUnknownVmIsEmpty) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  hv::Vm& vm = hv.create_vm(booked("gcc", 100.0), app("gcc"), 0);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  // Before any tick, no state was created yet.
  EXPECT_EQ(ctl.state(vm).punish_events, 0);
  EXPECT_TRUE(ctl.allows(vm));
}

TEST(Controller, PunishedVmGetsZeroCpu) {
  hv::Hypervisor hv(test::test_machine(), std::make_unique<Ks4Xen>());
  hv::Vm& dis = hv.create_vm(booked("lbm", 0.5), app("lbm", 1), 0);
  hv::Vm& other = hv.create_vm(booked("gcc", 0.0, true), app("gcc", 2), 0);
  hv.run_ticks(60);
  const auto& ctl = static_cast<Ks4Xen&>(hv.scheduler()).kyoto();
  EXPECT_TRUE(ctl.state(dis).punished);
  // The co-located unbooked VM absorbs the freed CPU (work conserving).
  EXPECT_GT(hv.sched_ticks(other.vcpu(0)), 50);
}

}  // namespace
}  // namespace kyoto::core
