// Monitor-conformance suite: the contract between the estimators, the
// ground-truth oracle and shadow mode.
//
// Three families of guarantees, all gated here:
//
//  * Shadow mode is a pure observer.  Attaching a GroundTruthShadow
//    (and its account/tick hooks) to a run must leave every trace the
//    experiment layer can read *byte-identical* — per-tick virtualized
//    PMCs, scheduler decisions, Kyoto quota/punishment state, and the
//    end-of-run LLC attribution/footprint/pollution counters — for
//    the serial engine, the parallel tick engine (threads=2/4) and
//    SweepRunner lanes (1/2/4).  Never weaken these comparisons to
//    tolerances: a shadow that perturbs scheduling by one tick is a
//    broken oracle.
//
//  * Every estimator must agree with the oracle on WHO pollutes: on a
//    fig4-style mix the polluter is ranked first, and the charged
//    rates stay within the documented error bounds relative to
//    direct-PMC contamination (dedication < 0.9x, McSim replay
//    < 0.5x of direct's victim error; ground truth exact).
//
//  * GroundTruthMonitor used as a scheduler input is self-consistent:
//    the rate it charges equals the rate its own shadow records,
//    tick for tick, exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kyoto/ground_truth.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/monitor_accuracy.hpp"
#include "sim/sweep_runner.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto {
namespace {

using core::GroundTruthShadow;

struct MonitorCase {
  std::string name;
  sim::MonitorFactory make;
};

std::vector<MonitorCase> all_monitors() {
  return {
      {"direct",
       []() -> std::unique_ptr<core::PollutionMonitor> {
         return std::make_unique<core::DirectPmcMonitor>();
       }},
      {"dedication",
       []() -> std::unique_ptr<core::PollutionMonitor> {
         core::SocketDedicationMonitor::Params params;
         params.sample_period_ticks = 5;  // several campaigns in-window
         return std::make_unique<core::SocketDedicationMonitor>(params);
       }},
      {"mcsim",
       []() -> std::unique_ptr<core::PollutionMonitor> {
         return std::make_unique<core::McSimMonitor>();
       }},
      {"ground-truth",
       []() -> std::unique_ptr<core::PollutionMonitor> {
         return std::make_unique<core::GroundTruthMonitor>();
       }},
  };
}

/// The fig4-style conformance mix: the sensitive tenant on core 0,
/// the polluter on core 1, a moderate and a quiet app beside them —
/// on the NUMA machine so socket dedication can campaign.
std::vector<sim::VmPlan> conformance_mix(const hv::MachineConfig& machine, double llc_cap) {
  const std::vector<std::string> apps = {"gcc", "lbm", "omnetpp", "hmmer"};
  std::vector<sim::VmPlan> plans;
  for (std::size_t core = 0; core < apps.size(); ++core) {
    sim::VmPlan plan;
    plan.config.name = apps[core];
    plan.config.llc_cap = llc_cap;
    plan.config.loop_workload = true;
    plan.workload = test::app_factory(apps[core], machine);
    plan.pinned_cores = {static_cast<int>(core)};
    plans.push_back(std::move(plan));
  }
  return plans;
}
constexpr std::size_t kPolluterIndex = 1;  // lbm

void append_u64(std::vector<std::uint64_t>& blob, std::uint64_t v) { blob.push_back(v); }
void append_f64(std::vector<std::uint64_t>& blob, double v) {
  blob.push_back(std::bit_cast<std::uint64_t>(v));
}

/// Runs the conformance mix under KS4Xen(monitor) and serializes every
/// scheduler/LLC observable into a flat word blob — optionally with a
/// shadow attached, whose presence the blob must never betray.
std::vector<std::uint64_t> run_trace(const sim::MonitorFactory& make_monitor, int threads,
                                     bool with_shadow, Tick ticks = 18) {
  const hv::MachineConfig machine = test::test_numa_machine();
  auto hv = std::make_unique<hv::Hypervisor>(
      machine, std::make_unique<core::Ks4Xen>(make_monitor()));
  hv->set_execution_threads(threads);
  for (auto& plan : conformance_mix(machine, 25.0)) {
    std::vector<std::unique_ptr<workloads::Workload>> workloads;
    workloads.push_back(plan.workload(7));
    hv->create_vm(plan.config, std::move(workloads), plan.pinned_cores);
  }
  const auto& controller = static_cast<core::Ks4Xen&>(hv->scheduler()).kyoto();
  std::unique_ptr<GroundTruthShadow> shadow;
  if (with_shadow) shadow = std::make_unique<GroundTruthShadow>(*hv, &controller);

  std::vector<std::uint64_t> blob;
  hv->add_tick_hook([&blob, &controller](hv::Hypervisor& h, Tick now) {
    append_u64(blob, static_cast<std::uint64_t>(now));
    for (hv::Vm* vm : h.vms()) {
      const pmc::CounterSet counters = vm->counters();
      for (unsigned c = 0; c < pmc::kCounterCount; ++c) append_u64(blob, counters.values[c]);
      for (const auto& vcpu : vm->vcpus()) {
        append_u64(blob, static_cast<std::uint64_t>(h.sched_ticks(*vcpu)));
        append_u64(blob, static_cast<std::uint64_t>(vcpu->pinned_core()));
      }
      const auto& st = controller.state(*vm);
      append_f64(blob, st.quota);
      append_f64(blob, st.last_rate);
      append_u64(blob, st.punished ? 1 : 0);
      append_u64(blob, static_cast<std::uint64_t>(st.punished_ticks));
    }
    for (int core = 0; core < h.machine().topology().total_cores(); ++core) {
      append_u64(blob, static_cast<std::uint64_t>(h.idle_ticks(core)));
    }
  });
  hv->run_ticks(ticks);

  // End-of-run LLC state including the ground-truth pollution
  // counters: a shadow (or estimator) must never alter the oracle.
  auto& memory = hv->machine().memory();
  for (int socket = 0; socket < machine.topology.sockets; ++socket) {
    const auto& llc = memory.llc(socket);
    for (int vm = 0; vm < hv->vm_count(); ++vm) {
      const auto& stats = llc.stats_for_vm(vm);
      append_u64(blob, stats.accesses);
      append_u64(blob, stats.misses);
      append_u64(blob, stats.evictions);
      append_u64(blob, llc.footprint_lines(vm));
      const auto& pollution = llc.pollution_for_vm(vm);
      append_u64(blob, pollution.cross_evictions_inflicted);
      append_u64(blob, pollution.cross_evictions_suffered);
      append_u64(blob, pollution.contention_misses);
    }
    append_f64(blob, llc.occupancy());
  }
  return blob;
}

// --------------------------------------------------------------------
// Shadow mode is invisible
// --------------------------------------------------------------------

TEST(ShadowConformance, ShadowLeavesTracesByteIdenticalAllMonitorsAllThreadCounts) {
  for (const auto& mc : all_monitors()) {
    const std::vector<std::uint64_t> bare = run_trace(mc.make, 1, false);
    ASSERT_FALSE(bare.empty()) << mc.name;
    for (const int threads : {1, 2, 4}) {
      const std::vector<std::uint64_t> shadowed = run_trace(mc.make, threads, true);
      ASSERT_EQ(bare.size(), shadowed.size()) << mc.name << " threads=" << threads;
      std::size_t first_diff = bare.size();
      for (std::size_t i = 0; i < bare.size(); ++i) {
        if (bare[i] != shadowed[i]) {
          first_diff = i;
          break;
        }
      }
      EXPECT_EQ(first_diff, bare.size())
          << mc.name << " threads=" << threads
          << ": shadow perturbed the run; first divergent word at " << first_diff;
    }
  }
}

TEST(ShadowConformance, ShadowRecordingsIdenticalAcrossThreadCounts) {
  // The shadow's own recordings must not depend on the engine width
  // either: per-tick samples are part of the deterministic contract.
  for (const auto& mc : all_monitors()) {
    sim::RunSpec spec;
    spec.machine = test::test_numa_machine();
    spec.warmup_ticks = 3;
    spec.measure_ticks = 12;
    const auto plans = conformance_mix(spec.machine, 25.0);
    auto run = [&](int threads) {
      sim::RunSpec tspec = spec;
      tspec.threads = threads;
      return sim::run_with_shadow(tspec, plans, mc.make).series;
    };
    const auto serial = run(1);
    ASSERT_FALSE(serial.empty()) << mc.name;
    EXPECT_EQ(serial, run(2)) << mc.name;
    EXPECT_EQ(serial, run(4)) << mc.name;
  }
}

TEST(ShadowConformance, SweepLanesPreserveOutcomesAndShadowSeries) {
  // Ablation-shaped instrumented jobs across SweepRunner lanes: the
  // outcomes must equal both the lanes=1 batch AND the uninstrumented
  // batch; the shadow series must be identical at every lane count.
  sim::RunSpec spec;
  spec.machine = test::test_numa_machine();
  spec.warmup_ticks = 3;
  spec.measure_ticks = 9;
  auto submit = [&](sim::SweepRunner& sweep, bool instrumented,
                    std::vector<std::unique_ptr<GroundTruthShadow>>* shadows) {
    // Observer lambdas capture slot addresses: size the vector up
    // front so later push_backs cannot reallocate under them.
    if (shadows != nullptr) shadows->reserve(all_monitors().size());
    for (const auto& mc : all_monitors()) {
      sim::RunSpec job_spec = spec;
      auto make = mc.make;
      job_spec.scheduler = [make]() -> std::unique_ptr<hv::Scheduler> {
        return std::make_unique<core::Ks4Xen>(make());
      };
      auto plans = conformance_mix(spec.machine, 25.0);
      if (!instrumented) {
        sweep.add(job_spec, std::move(plans), mc.name);
        continue;
      }
      shadows->push_back(nullptr);
      sweep.add(job_spec, std::move(plans), sim::shadow_observer(&shadows->back()),
                mc.name);
    }
  };

  sim::SweepRunner bare(1);
  submit(bare, false, nullptr);
  const auto bare_outcomes = bare.run();

  std::vector<std::vector<std::vector<GroundTruthShadow::Sample>>> serial_series;
  std::vector<sim::RunOutcome> serial_outcomes;
  for (const int lanes : {1, 2, 4}) {
    sim::SweepRunner sweep(lanes);
    std::vector<std::unique_ptr<GroundTruthShadow>> shadows;
    submit(sweep, true, &shadows);
    const auto outcomes = sweep.run();
    EXPECT_EQ(outcomes, bare_outcomes) << "lanes=" << lanes
                                       << ": observers changed job outcomes";
    std::vector<std::vector<std::vector<GroundTruthShadow::Sample>>> series;
    for (const auto& shadow : shadows) {
      ASSERT_NE(shadow, nullptr) << "lanes=" << lanes;
      series.push_back(shadow->samples());
    }
    if (lanes == 1) {
      serial_series = series;
      serial_outcomes = outcomes;
    } else {
      EXPECT_EQ(series, serial_series) << "lanes=" << lanes;
      EXPECT_EQ(outcomes, serial_outcomes) << "lanes=" << lanes;
    }
  }
}

// --------------------------------------------------------------------
// Estimators vs the oracle
// --------------------------------------------------------------------

TEST(MonitorConformance, EveryEstimatorRanksThePolluterFirstWithinBounds) {
  // Steady contention (no permits): the attribution problem of §3.3.
  sim::RunSpec spec;
  spec.machine = test::test_numa_machine();
  spec.warmup_ticks = 3;
  spec.measure_ticks = 27;
  const auto plans = conformance_mix(spec.machine, 0.0);

  std::vector<sim::MonitorAccuracy> scores;
  for (const auto& mc : all_monitors()) {
    const auto run = sim::run_with_shadow(spec, plans, mc.make);
    const auto accuracy = sim::score_monitor_accuracy(run.series);
    // The oracle itself must identify lbm as the aggressor…
    ASSERT_EQ(accuracy.true_aggressor, static_cast<int>(kPolluterIndex)) << mc.name;
    // …and every estimator's mean-rate ranking must agree.
    std::size_t est_top = 0;
    for (std::size_t vm = 1; vm < accuracy.estimator_mean_rate.size(); ++vm) {
      if (accuracy.estimator_mean_rate[vm] > accuracy.estimator_mean_rate[est_top]) {
        est_top = vm;
      }
    }
    EXPECT_EQ(est_top, kPolluterIndex) << mc.name << " ranked the wrong VM first";
    EXPECT_GT(accuracy.top1_agreement, 0.75) << mc.name;
    EXPECT_GT(accuracy.scored_ticks, 0) << mc.name;
    scores.push_back(accuracy);
  }

  // Documented error bounds, relative to direct-PMC contamination of
  // the victim (gcc, index 0): socket dedication below 0.9x, McSim
  // below 0.5x, ground truth exact.
  auto victim_error = [](const sim::MonitorAccuracy& a) {
    return std::abs(a.estimator_mean_rate[0] - a.true_mean_rate[0]);
  };
  const double direct_err = victim_error(scores[0]);
  EXPECT_GT(direct_err, 1.0) << "direct PMCs should visibly inflate the victim here";
  EXPECT_LT(victim_error(scores[1]), direct_err * 0.9) << "dedication bound";
  EXPECT_LT(victim_error(scores[2]), direct_err * 0.5) << "mcsim bound";
  EXPECT_LT(scores[3].mean_abs_error, 1e-9) << "ground truth must be exact";
}

TEST(MonitorConformance, GroundTruthMonitorMatchesItsOwnShadowExactly) {
  // The self-check that pins the whole harness: when the scheduler's
  // monitor IS the oracle, the charged rate and the shadow's true
  // rate are the same number, tick for tick, on every VM that ran.
  sim::RunSpec spec;
  spec.machine = test::test_numa_machine();
  spec.warmup_ticks = 0;
  spec.measure_ticks = 20;
  const auto run = sim::run_with_shadow(spec, conformance_mix(spec.machine, 25.0), [] {
    return std::make_unique<core::GroundTruthMonitor>();
  });
  int ran_samples = 0;
  for (const auto& series : run.series) {
    for (const auto& sample : series) {
      if (!sample.ran) continue;
      ++ran_samples;
      EXPECT_DOUBLE_EQ(sample.estimator_rate, sample.true_rate)
          << "tick " << sample.tick;
    }
  }
  EXPECT_GT(ran_samples, 30);
}

TEST(MonitorConformance, GroundTruthMonitorDrivesPunishmentOfThePolluter) {
  // Usable as a scheduler input: with ground-truth attribution the
  // polluter pays and the victim never does.
  sim::RunSpec spec;
  spec.machine = test::test_numa_machine();
  spec.warmup_ticks = 3;
  spec.measure_ticks = 24;
  sim::RunSpec job_spec = spec;
  job_spec.scheduler = []() -> std::unique_ptr<hv::Scheduler> {
    return std::make_unique<core::Ks4Xen>(std::make_unique<core::GroundTruthMonitor>());
  };
  const auto outcome = sim::run_scenario(job_spec, conformance_mix(spec.machine, 25.0));
  EXPECT_GT(outcome.vms[kPolluterIndex].punished_ticks, 5);
  EXPECT_EQ(outcome.vms[0].punished_ticks, 0) << "victim punished under ground truth";
}

TEST(MonitorConformance, ShadowSupportsNonKyotoRuns) {
  // Shadowing a vanilla credit-scheduler run records the oracle
  // columns; the estimator column stays unset.
  sim::RunSpec spec = test::quick_spec(2, 8);
  std::unique_ptr<GroundTruthShadow> shadow;
  sim::VmPlan gcc;
  gcc.config.name = "gcc";
  gcc.config.loop_workload = true;
  gcc.workload = test::app_factory("gcc", spec.machine);
  gcc.pinned_cores = {0};
  sim::VmPlan lbm;
  lbm.config.name = "lbm";
  lbm.config.loop_workload = true;
  lbm.workload = test::app_factory("lbm", spec.machine);
  lbm.pinned_cores = {1};
  sim::run_scenario(spec, {gcc, lbm}, [&shadow](hv::Hypervisor& hv) {
    shadow = std::make_unique<GroundTruthShadow>(hv);
  });
  ASSERT_EQ(shadow->samples().size(), 2u);
  std::uint64_t lbm_inflicted = 0;
  for (const auto& sample : shadow->samples_for(1)) {
    EXPECT_EQ(sample.estimator_rate, -1.0);
    lbm_inflicted += sample.cross_evictions_inflicted;
  }
  EXPECT_GT(lbm_inflicted, 0u) << "the polluter must inflict cross-VM evictions";
}

}  // namespace
}  // namespace kyoto
