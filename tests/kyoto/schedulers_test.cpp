// Integration behaviour of the three Kyoto schedulers: the paper's
// core claim (performance predictability for the sensitive VM,
// punishment for the polluter) must hold under KS4Xen, KS4Linux and
// KS4Pisces alike.
#include <gtest/gtest.h>

#include <memory>

#include "hv/cfs_scheduler.hpp"
#include "hv/credit_scheduler.hpp"
#include "hv/pisces.hpp"
#include "kyoto/ks4linux.hpp"
#include "kyoto/ks4pisces.hpp"
#include "kyoto/ks4xen.hpp"
#include "sim/experiment.hpp"
#include "test_util.hpp"
#include "workloads/catalog.hpp"

namespace kyoto::core {
namespace {

struct Case {
  const char* name;
  sim::SchedulerFactory baseline;
  sim::SchedulerFactory kyoto;
};

const Case kCases[] = {
    {"xen",
     [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CreditScheduler>()); },
     [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<Ks4Xen>()); }},
    {"linux",
     [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::CfsScheduler>()); },
     [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<Ks4Linux>()); }},
    {"pisces",
     [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<hv::PiscesScheduler>()); },
     [] { return std::unique_ptr<hv::Scheduler>(std::make_unique<Ks4Pisces>()); }},
};

class KyotoSchedulerTest : public ::testing::TestWithParam<Case> {};

TEST_P(KyotoSchedulerTest, ProtectsSensitiveVmFromDisruptor) {
  sim::RunSpec spec = test::quick_spec(/*warmup=*/6, /*measure=*/45);

  const auto gcc = test::app_factory("gcc", spec.machine);
  const auto lbm = test::app_factory("lbm", spec.machine);

  // Solo baseline under the baseline scheduler.
  spec.scheduler = GetParam().baseline;
  const auto solo = sim::run_solo(spec, gcc, "gcc");

  sim::VmPlan sen;
  sen.config.name = "gcc";
  sen.workload = gcc;
  sen.pinned_cores = {0};
  sim::VmPlan dis;
  dis.config.name = "lbm";
  dis.config.loop_workload = true;
  dis.workload = lbm;
  dis.pinned_cores = {1};  // parallel colocation on the shared LLC

  const auto contended = sim::run_scenario(spec, {sen, dis});
  const double deg_base = sim::degradation_pct(solo.ipc, contended.vms[0].ipc);
  EXPECT_GT(deg_base, 8.0) << "no contention to fix for " << GetParam().name;

  // Same scenario under the Kyoto scheduler with a permit sized off
  // gcc's solo pollution.
  spec.scheduler = GetParam().kyoto;
  const double permit = solo.llc_cap_act * 1.5 + 5.0;
  sen.config.llc_cap = permit;
  dis.config.llc_cap = permit;
  const auto protected_run = sim::run_scenario(spec, {sen, dis});
  const double deg_kyoto = sim::degradation_pct(solo.ipc, protected_run.vms[0].ipc);

  EXPECT_LT(deg_kyoto, deg_base / 2.0) << GetParam().name;
  EXPECT_LT(deg_kyoto, 8.0) << GetParam().name;
  // The polluter, not the victim, pays.
  EXPECT_GT(protected_run.vms[1].punished_ticks, protected_run.vms[0].punished_ticks * 5)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(AllKyotoSchedulers, KyotoSchedulerTest, ::testing::ValuesIn(kCases),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(Ks4Xen, NamesAndIntrospection) {
  Ks4Xen ks;
  EXPECT_EQ(ks.name(), "KS4Xen");
  EXPECT_EQ(Ks4Linux().name(), "KS4Linux");
  EXPECT_EQ(Ks4Pisces().name(), "KS4Pisces");
}

TEST(Ks4Xen, WithinPermitVmIsNeverPunished) {
  sim::RunSpec spec = test::quick_spec(3, 30);
  spec.scheduler = [] { return std::make_unique<Ks4Xen>(); };
  const auto gcc = test::app_factory("gcc", spec.machine);
  // First measure gcc's own rate, then book 3x that.
  const auto solo = sim::run_solo(spec, gcc, "gcc");
  sim::VmPlan plan;
  plan.config.name = "gcc";
  plan.config.llc_cap = solo.llc_cap_act * 3.0 + 10.0;
  plan.workload = gcc;
  plan.pinned_cores = {0};
  const auto outcome = sim::run_scenario(spec, {plan});
  EXPECT_EQ(outcome.vms[0].punish_events, 0);
  EXPECT_EQ(outcome.vms[0].punished_ticks, 0);
}

TEST(Ks4Xen, EnforcesLongRunAveragePollution) {
  // The enforced long-run pollution rate (misses per wall ms) must
  // not exceed the booked cap by more than the banking slack.
  sim::RunSpec spec = test::quick_spec(0, 150);
  spec.scheduler = [] { return std::make_unique<Ks4Xen>(); };
  const auto lbm = test::app_factory("lbm", spec.machine);
  sim::VmPlan plan;
  plan.config.name = "lbm";
  plan.config.llc_cap = 100.0;
  plan.config.loop_workload = true;
  plan.workload = lbm;
  plan.pinned_cores = {0};
  const auto outcome = sim::run_scenario(spec, {plan});
  const double wall_ms = static_cast<double>(outcome.measured_ticks * kTickMs);
  const double achieved = static_cast<double>(outcome.vms[0].llc_misses) / wall_ms;
  EXPECT_LT(achieved, 100.0 * 1.6);
  EXPECT_GT(achieved, 100.0 * 0.3);  // and it is not starved outright
}

}  // namespace
}  // namespace kyoto::core
