#include "common/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace kyoto {
namespace {

struct Captured {
  LogLevel level;
  std::string message;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_level(LogLevel::kDebug);
    set_log_sink([this](LogLevel level, const std::string& msg) {
      captured_.push_back({level, msg});
    });
  }
  void TearDown() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kWarn);
  }
  std::vector<Captured> captured_;
};

TEST_F(LogTest, MessageReachesSink) {
  KYOTO_LOG_INFO << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "hello 42");
  EXPECT_EQ(captured_[0].level, LogLevel::kInfo);
}

TEST_F(LogTest, LevelFiltering) {
  set_log_level(LogLevel::kWarn);
  KYOTO_LOG_DEBUG << "dropped";
  KYOTO_LOG_INFO << "dropped too";
  KYOTO_LOG_WARN << "kept";
  KYOTO_LOG_ERROR << "kept too";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].message, "kept");
  EXPECT_EQ(captured_[1].message, "kept too");
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST_F(LogTest, GetLevelRoundTrips) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace kyoto
