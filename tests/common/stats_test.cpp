#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace kyoto {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.sum(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0;
    ((i % 2 == 0) ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0); }

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(KendallTau, IdenticalOrderIsOne) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(kendall_tau(a, a), 1.0);
}

TEST(KendallTau, ReversedOrderIsMinusOne) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), -1.0);
}

TEST(KendallTau, OneSwapCloseToOne) {
  // Swapping one adjacent pair in n=5 flips 1 of 10 pairs: tau = 0.8.
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 1, 3, 4, 5};
  EXPECT_DOUBLE_EQ(kendall_tau(a, b), 0.8);
}

TEST(KendallTau, ShortInputs) {
  EXPECT_DOUBLE_EQ(kendall_tau({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(kendall_tau({1.0}, {2.0}), 1.0);
}

TEST(KendallTauOrders, PaperExample) {
  // The paper's Fig 4 claim: o3 (Equation 1) is closer to o1 (real
  // aggressiveness) than o2 (LLCM).
  const std::vector<std::string> o1 = {"blockie", "lbm",     "mcf",   "soplex", "milc",
                                       "omnetpp", "gcc",     "xalan", "astar",  "bzip"};
  const std::vector<std::string> o2 = {"milc",    "lbm",     "soplex", "mcf",   "blockie",
                                       "gcc",     "omnetpp", "xalan",  "astar", "bzip"};
  const std::vector<std::string> o3 = {"lbm",     "blockie", "milc",  "mcf",   "soplex",
                                       "gcc",     "omnetpp", "xalan", "astar", "bzip"};
  const double tau_llcm = kendall_tau_orders(o1, o2);
  const double tau_eq1 = kendall_tau_orders(o1, o3);
  EXPECT_GT(tau_eq1, tau_llcm);
  EXPECT_GT(tau_eq1, 0.6);
}

TEST(KendallTauOrders, IgnoresUnknownNames) {
  const std::vector<std::string> a = {"x", "y", "z", "only-in-a"};
  const std::vector<std::string> b = {"x", "y", "z", "only-in-b"};
  EXPECT_DOUBLE_EQ(kendall_tau_orders(a, b), 1.0);
}

TEST(LinearFit, PerfectLine) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y = {1, 3, 5, 7, 9};
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  std::vector<double> x;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(5.0 + 0.7 * i + (rng.uniform() - 0.5));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.7, 0.05);
  EXPECT_GT(fit.r2, 0.98);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(linear_fit({}, {}).slope, 0.0);
  EXPECT_DOUBLE_EQ(linear_fit({1.0}, {2.0}).slope, 0.0);
  // Vertical data (no x variance) must not blow up.
  const auto fit = linear_fit({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

}  // namespace
}  // namespace kyoto
