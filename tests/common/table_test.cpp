#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/csv.hpp"

namespace kyoto {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name        | value"), std::string::npos);
  EXPECT_NE(s.find("longer-name | 22"), std::string::npos);
  EXPECT_NE(s.find("------------+------"), std::string::npos);
}

TEST(TextTable, MissingCellsRenderEmpty) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, TooManyCellsThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::logic_error);
}

TEST(TextTable, EmptyHeadersThrows) {
  EXPECT_THROW(TextTable({}), std::logic_error);
}

TEST(FmtDouble, FixedDigits) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-1234567), "-1,234,567");
}

TEST(AsciiBar, ProportionalLength) {
  EXPECT_EQ(ascii_bar(0.0, 10.0, 10), "");
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10), "#####");
  EXPECT_EQ(ascii_bar(10.0, 10.0, 10), "##########");
  // Clamped above max.
  EXPECT_EQ(ascii_bar(20.0, 10.0, 10), "##########");
}

TEST(AsciiBar, DegenerateInputs) {
  EXPECT_EQ(ascii_bar(1.0, 0.0, 10), "");
  EXPECT_EQ(ascii_bar(1.0, 10.0, 0), "");
}

TEST(CsvEscape, PlainFieldUntouched) { EXPECT_EQ(csv_escape("abc"), "abc"); }

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream oss;
  CsvWriter w(oss);
  w.row({"h1", "h2"});
  w.row({"a,b", "2"});
  EXPECT_EQ(oss.str(), "h1,h2\n\"a,b\",2\n");
}

}  // namespace
}  // namespace kyoto
