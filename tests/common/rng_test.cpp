#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace kyoto {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, CopyClonesStream) {
  Rng a(55);
  a();
  a();
  Rng b = a;  // copy mid-stream
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(9);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(42);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Splitmix, DistinctOutputs) {
  std::uint64_t state = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(state));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace kyoto
